#pragma once
// Proxies — handles for remote method invocation (paper §II-D).
//
//   auto workers = cx::create_array<Worker>({100});
//   workers[7].send<&Worker::work>(data);          // fire-and-forget
//   auto f = workers[7].call<&Worker::result>();   // ret=True: a future
//   workers.broadcast<&Worker::start>(args);       // whole collection
//
// Calls return immediately; arguments are serialized only if the target
// lives on a different PE — same-PE sends hand the argument tuple over by
// reference (the paper's CharmPy-specific optimization). Proxies are
// plain values: copyable, PUPable, and passable as entry-method
// arguments.

#include <type_traits>
#include <utility>

#include "core/future.hpp"
#include "core/registry.hpp"
#include "core/send_iface.hpp"

namespace cx {

namespace detail {

template <auto M, typename C, typename... Us>
ArgsCarrier make_args(Us&&... us) {
  using Traits = MethodTraits<decltype(M)>;
  static_assert(std::is_base_of_v<typename Traits::Class, C>,
                "entry method does not belong to this proxy's chare type");
  using Tuple = typename Traits::ArgsTuple;
  auto t = std::make_shared<Tuple>(std::forward<Us>(us)...);
  return ArgsCarrier{std::move(t), &pup_tuple<Tuple>};
}

template <auto M>
using RetOf = typename MethodTraits<decltype(M)>::Ret;

}  // namespace detail

/// Proxy to one element of a collection (or to a singleton chare).
template <typename C>
class ElementProxy {
 public:
  ElementProxy() = default;
  ElementProxy(CollectionId coll, const Index& idx)
      : coll_(coll), idx_(idx) {}

  /// Invoke entry method M asynchronously; returns immediately.
  template <auto M, typename... Us>
  void send(Us&&... us) const {
    detail::proxy_send(coll_, idx_, ep_id<M>(),
                       detail::make_args<M, C>(std::forward<Us>(us)...), {});
  }

  /// send() with an explicit nominal payload size for cost models —
  /// used by modeled-kernel simulation runs shipping token payloads.
  template <auto M, typename... Us>
  void send_sized(std::uint64_t nominal_bytes, Us&&... us) const {
    detail::proxy_send(coll_, idx_, ep_id<M>(),
                       detail::make_args<M, C>(std::forward<Us>(us)...), {},
                       nominal_bytes);
  }

  /// Invoke M and obtain a Future for its return value (ret=True).
  template <auto M, typename... Us>
  [[nodiscard]] Future<detail::RetOf<M>> call(Us&&... us) const {
    const ReplyTo slot = detail::make_future_slot();
    detail::proxy_send(coll_, idx_, ep_id<M>(),
                       detail::make_args<M, C>(std::forward<Us>(us)...),
                       slot);
    return Future<detail::RetOf<M>>(slot);
  }

  /// Callback that invokes M on this element (reduction targets).
  template <auto M>
  [[nodiscard]] Callback callback() const {
    return Callback::to_element(coll_, idx_, ep_id<M>());
  }

  [[nodiscard]] CollectionId collection() const noexcept { return coll_; }
  [[nodiscard]] const Index& index() const noexcept { return idx_; }
  [[nodiscard]] bool valid() const noexcept {
    return coll_ != kInvalidCollection;
  }

  bool operator==(const ElementProxy& o) const {
    return coll_ == o.coll_ && idx_ == o.idx_;
  }

  void pup(pup::Er& p) {
    p | coll_;
    p | idx_;
  }

 private:
  CollectionId coll_ = kInvalidCollection;
  Index idx_;
};

/// Proxy to a *section* — an arbitrary index subset of a chare array
/// (obtained from CollectionProxy::section). Multicasts travel a k-ary
/// spanning tree over just the PEs hosting members; section-scoped
/// reductions climb the same tree. Plain value: copyable, PUPable,
/// passable as an entry-method argument — members typically receive
/// their section proxy that way and contribute to it.
template <typename C>
class SectionProxy {
 public:
  SectionProxy() = default;

  /// Invoke M on every member of the section (multicast).
  template <auto M, typename... Us>
  void broadcast(Us&&... us) const {
    detail::section_broadcast(sect_, coll_, root_, ep_id<M>(),
                              detail::make_args<M, C>(std::forward<Us>(us)...),
                              {});
  }

  /// Multicast M and obtain a future that completes (with no value)
  /// once every member has executed it.
  template <auto M, typename... Us>
  [[nodiscard]] Future<void> broadcast_done(Us&&... us) const {
    const ReplyTo slot = detail::make_future_slot();
    detail::section_broadcast(sect_, coll_, root_, ep_id<M>(),
                              detail::make_args<M, C>(std::forward<Us>(us)...),
                              slot);
    return Future<void>(slot);
  }

  /// The section id (distinct namespace from collection ids).
  [[nodiscard]] std::uint64_t section_id() const noexcept { return sect_; }
  [[nodiscard]] CollectionId collection() const noexcept { return coll_; }
  /// Number of (deduplicated) members.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool valid() const noexcept { return sect_ != 0; }

  bool operator==(const SectionProxy& o) const {
    return sect_ == o.sect_ && coll_ == o.coll_;
  }

  void pup(pup::Er& p) {
    p | sect_;
    p | coll_;
    p | size_;
    p | root_;
  }

 private:
  template <typename>
  friend class CollectionProxy;

  SectionProxy(std::uint64_t sect, CollectionId coll, std::uint64_t size,
               std::int32_t root)
      : sect_(sect), coll_(coll), size_(size), root_(root) {}

  std::uint64_t sect_ = 0;
  CollectionId coll_ = kInvalidCollection;
  std::uint64_t size_ = 0;
  std::int32_t root_ = -1;
};

/// Proxy to a whole collection (Array or Group).
template <typename C>
class CollectionProxy {
 public:
  CollectionProxy() = default;
  explicit CollectionProxy(CollectionId coll) : coll_(coll) {}

  /// Proxy to a single member.
  ElementProxy<C> operator[](const Index& idx) const {
    return ElementProxy<C>(coll_, idx);
  }

  /// Invoke M on every member (broadcast).
  template <auto M, typename... Us>
  void broadcast(Us&&... us) const {
    detail::proxy_broadcast(coll_, ep_id<M>(),
                            detail::make_args<M, C>(std::forward<Us>(us)...),
                            {});
  }

  /// Broadcast M and obtain a future that completes (with no value) once
  /// every member has executed it (paper §II-D: futures on broadcasts).
  template <auto M, typename... Us>
  [[nodiscard]] Future<void> broadcast_done(Us&&... us) const {
    const ReplyTo slot = detail::make_future_slot();
    detail::proxy_broadcast(coll_, ep_id<M>(),
                            detail::make_args<M, C>(std::forward<Us>(us)...),
                            slot);
    return Future<void>(slot);
  }

  /// Callback that broadcasts M to the collection (reduction targets).
  template <auto M>
  [[nodiscard]] Callback callback() const {
    return Callback::to_broadcast(coll_, ep_id<M>());
  }

  /// Insert an element into a sparse array (paper: ckInsert). `on_pe`
  /// -1 places it by the collection's map.
  template <typename... Us>
  void insert(const Index& idx, Us&&... us) const {
    auto args = std::make_tuple(std::decay_t<Us>(std::forward<Us>(us))...);
    detail::sparse_insert(coll_, idx, factory_id<C, std::decay_t<Us>...>(),
                          pup::to_bytes(args), /*on_pe=*/-1);
  }

  template <typename... Us>
  void insert_on(int pe, const Index& idx, Us&&... us) const {
    auto args = std::make_tuple(std::decay_t<Us>(std::forward<Us>(us))...);
    detail::sparse_insert(coll_, idx, factory_id<C, std::decay_t<Us>...>(),
                          pup::to_bytes(args), pe);
  }

  /// Build a section over an arbitrary index subset of this array.
  /// Creation is asynchronous; the returned proxy is usable
  /// immediately (early operations are stashed until the section's
  /// build reaches the involved PEs).
  [[nodiscard]] SectionProxy<C> section(std::vector<Index> indices) const {
    const detail::SectionHandle h =
        detail::section_create(coll_, std::move(indices));
    return SectionProxy<C>(h.id, coll_, h.size, h.root);
  }

  /// Finish sparse insertion (paper: ckDoneInserting). The returned
  /// future completes once every in-flight insert has landed and every
  /// PE knows the final size; broadcast/reduce only after that.
  Future<void> done_inserting() const {
    const ReplyTo slot = detail::make_future_slot();
    detail::sparse_done_inserting(coll_, slot);
    return Future<void>(slot);
  }

  [[nodiscard]] CollectionId id() const noexcept { return coll_; }
  [[nodiscard]] bool valid() const noexcept {
    return coll_ != kInvalidCollection;
  }

  bool operator==(const CollectionProxy& o) const { return coll_ == o.coll_; }

  void pup(pup::Er& p) { p | coll_; }

 private:
  CollectionId coll_ = kInvalidCollection;
};

}  // namespace cx
