#include "core/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cassert>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/chare.hpp"
#include "core/collection.hpp"
#include "core/future.hpp"
#include "core/lb.hpp"
#include "core/registry.hpp"
#include "core/send_iface.hpp"
#include "fiber/fiber.hpp"
#include "ft/ft.hpp"
#include "machine/sim_machine.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace cx {

using cxf::Fiber;
using cxm::Message;
using cxm::MessagePtr;

namespace {

Runtime* g_runtime = nullptr;

// Identity staged for the Chare constructor (see construct_element).
thread_local CollectionId t_staged_coll = kInvalidCollection;
thread_local Index t_staged_idx;

// ---- wire headers --------------------------------------------------------

struct EntryHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  EpId ep = 0;
  ReplyTo reply;
  ReplyTo bcast_done;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | ep;
    p | reply;
    p | bcast_done;
  }
};

struct BcastHeader {
  CollectionId coll = kInvalidCollection;
  EpId ep = 0;
  ReplyTo reply;  ///< completion slot; doubles as the broadcast key
  std::int32_t root = 0;  ///< -2 = re-dispatched, do not forward again
  void pup(pup::Er& p) {
    p | coll;
    p | ep;
    p | reply;
    p | root;
  }
};

struct BcastDoneHeader {
  CollectionId coll = kInvalidCollection;
  ReplyTo reply;
  std::uint64_t count = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | reply;
    p | count;
  }
};

struct ReduceHeader {
  CollectionId coll = kInvalidCollection;
  std::uint32_t red_no = 0;
  CombineId combiner = kNoCombine;
  Callback cb;
  std::uint64_t count = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | red_no;
    p | combiner;
    p | cb;
    p | count;
  }
};

struct FutureHeader {
  FutureId fid = 0;
  void pup(pup::Er& p) { p | fid; }
};

struct MigrateHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::uint32_t red_no = 0;
  bool for_lb = false;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | red_no;
    p | for_lb;
  }
};

struct LocUpdateHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::int32_t pe = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | pe;
  }
};

struct InsertHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  FactoryId ctor = 0;
  std::int32_t on_pe = -1;  ///< requested placement (-1 = map decides)
  bool routed = false;      ///< placement resolved; construct on arrival
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | ctor;
    p | on_pe;
    p | routed;
  }
};

struct DoneInsertingHeader {
  CollectionId coll = kInvalidCollection;
  std::int32_t root = 0;
  ReplyTo reply;  ///< completion future of done_inserting()
  void pup(pup::Er& p) {
    p | coll;
    p | root;
    p | reply;
  }
};

struct InsertCountHeader {
  CollectionId coll = kInvalidCollection;
  std::uint64_t count = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | count;
    p | reply;
  }
};

struct SetSizeHeader {
  CollectionId coll = kInvalidCollection;
  std::uint64_t size = 0;
  std::int32_t root = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | size;
    p | root;
    p | reply;
  }
};

struct SizeAckHeader {
  CollectionId coll = kInvalidCollection;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | reply;
  }
};

struct LbCmdHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::int32_t to_pe = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | to_pe;
  }
};

struct LbAckHeader {
  CollectionId coll = kInvalidCollection;
  void pup(pup::Er& p) { p | coll; }
};

struct LbResumeHeader {
  CollectionId coll = kInvalidCollection;
  std::int32_t root = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | root;
  }
};

struct QdStartHeader {
  Callback cb;
  void pup(pup::Er& p) { p | cb; }
};

struct QdProbeHeader {
  std::uint64_t phase = 0;
  void pup(pup::Er& p) { p | phase; }
};

struct QdReplyHeader {
  std::uint64_t phase = 0;
  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  void pup(pup::Er& p) {
    p | phase;
    p | created;
    p | processed;
  }
};

struct CreateHeader {
  CollectionInfo info;
  std::int32_t root = 0;
  void pup(pup::Er& p) {
    p | info;
    p | root;
  }
};

// ---- cx::ft wire headers -------------------------------------------------

struct FtFailureHeader {
  cx::ft::PeFailure failure;
  void pup(pup::Er& p) { p | failure; }
};

struct CkptHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;  ///< resolved when all PEs have stored their blob
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct CkptAckHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct RestoreHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct RestoreAckHeader {
  ReplyTo reply;
  void pup(pup::Er& p) { p | reply; }
};

// ---- cx::ft checkpoint blobs ---------------------------------------------
// One PeBlob captures everything the scheduler owns on one PE. Iteration
// order of the live unordered_maps is not deterministic, so every list is
// sorted before packing — a fault-free run and a restored run must produce
// byte-identical blobs (the tests compare digests).

struct ElementBlob {
  Index idx;
  std::uint32_t red_no = 0;
  std::vector<std::byte> state;  ///< the chare's own pup()
  void pup(pup::Er& p) {
    p | idx;
    p | red_no;
    p | state;
  }
};

struct OverrideBlob {
  Index idx;
  std::int32_t pe = 0;
  void pup(pup::Er& p) {
    p | idx;
    p | pe;
  }
};

struct CollBlob {
  CollectionInfo info;
  std::vector<ElementBlob> elements;    ///< sorted by Index
  std::vector<OverrideBlob> overrides;  ///< sorted by Index
  void pup(pup::Er& p) {
    p | info;
    p | elements;
    p | overrides;
  }
};

struct RedBlob {
  CollectionId coll = kInvalidCollection;
  std::uint32_t red_no = 0;
  std::uint64_t count = 0;
  bool has_acc = false;
  std::vector<std::byte> acc;
  CombineId combiner = kNoCombine;
  Callback cb;
  void pup(pup::Er& p) {
    p | coll;
    p | red_no;
    p | count;
    p | has_acc;
    p | acc;
    p | combiner;
    p | cb;
  }
};

struct PeBlob {
  std::vector<CollBlob> colls;     ///< sorted by collection id
  std::vector<RedBlob> reductions; ///< red_root is a std::map: already ordered
  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  FutureId next_future = 0;
  void pup(pup::Er& p) {
    p | colls;
    p | reductions;
    p | created;
    p | processed;
    p | next_future;
  }
};

// In-process (same-PE) payloads: the zero-serialization fast path.
struct LocalEnvelope {
  enum class Kind { Entry, Resume, Start, Timer } kind = Kind::Entry;
  // Entry:
  CollectionId coll = kInvalidCollection;
  Index idx;
  EpId ep = 0;
  std::shared_ptr<void> tuple;
  std::vector<std::byte> (*pack)(void*) = nullptr;
  ReplyTo reply;
  ReplyTo bcast_done;
  // Resume:
  Fiber* fiber = nullptr;
  // Start:
  std::function<void()> fn;
  // Timer (Future::get_for deadline; delivered via Machine::send_after):
  std::uint64_t timer_token = 0;
};

template <typename H>
std::vector<std::byte> header_bytes(H h) {
  return pup::to_bytes(h);
}

template <typename H>
std::vector<std::byte> header_plus(H h, const std::vector<std::byte>& body) {
  auto out = pup::to_bytes(h);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

/// Binomial-tree children of `self` in a broadcast rooted at `root`.
void tree_children(int self, int root, int num_pes, std::vector<int>& out) {
  out.clear();
  const int q = (self - root + num_pes) % num_pes;
  const int lim = (q == 0) ? num_pes : (q & -q);
  for (int mask = 1; mask < lim; mask <<= 1) {
    const int child = q + mask;
    if (child < num_pes) out.push_back((child + root) % num_pes);
  }
}

Index delinearize(std::uint64_t lin, const Index& dims) {
  Index idx = dims;  // same arity
  for (int i = dims.ndims() - 1; i >= 0; --i) {
    idx[i] = static_cast<int>(lin % static_cast<std::uint64_t>(dims[i]));
    lin /= static_cast<std::uint64_t>(dims[i]);
  }
  return idx;
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-PE state

namespace {

struct CollMeta {
  CollectionInfo info;
  std::unordered_map<Index, std::unique_ptr<Chare>, IndexHash> elements;
  std::unordered_map<Index, int, IndexHash> overrides;  ///< migrated homes
  std::unordered_map<Index, std::vector<MessagePtr>, IndexHash> pending;
};

struct RedState {
  std::uint64_t count = 0;
  bool has_acc = false;
  std::vector<std::byte> acc;
  CombineId combiner = kNoCombine;
  Callback cb;
};

struct FutureSlot {
  std::optional<std::vector<std::byte>> value;
  Fiber* waiter = nullptr;
};

struct FiberRec {
  std::unique_ptr<Fiber> fiber;
  Chare* owner = nullptr;
};

struct PeState {
  std::unordered_map<CollectionId, CollMeta> colls;
  /// Messages for collections whose creation hasn't reached this PE yet.
  std::unordered_map<CollectionId, std::vector<MessagePtr>> stash;
  std::unordered_map<FutureId, FutureSlot> futures;
  FutureId next_future = 0;
  std::unordered_map<Fiber*, FiberRec> fibers;
  /// Reductions rooted on this PE, keyed (collection, red_no).
  std::map<std::pair<CollectionId, std::uint32_t>, RedState> red_root;
  /// Broadcast-completion counts, keyed (reply.pe, reply.fid).
  std::map<std::pair<std::int32_t, FutureId>, std::uint64_t> bcast_done_root;
  /// Sparse-array size gathering, keyed by collection: (total, reports).
  std::unordered_map<CollectionId, std::pair<std::uint64_t, int>> ins_count;
  /// SetSize acknowledgment counts (done_inserting completion).
  std::unordered_map<CollectionId, int> size_acks;
  std::uint64_t created = 0;    ///< app messages sent from this PE
  std::uint64_t processed = 0;  ///< app messages handled on this PE
  /// Armed Future::get_for deadlines: token -> suspended fiber. A timer
  /// whose token is gone (value arrived first) is a no-op on delivery.
  std::unordered_map<std::uint64_t, Fiber*> timer_waiters;
  std::uint64_t next_timer_token = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Runtime::Impl

struct Runtime::Impl {
  RuntimeConfig cfg;
  std::unique_ptr<cxm::Machine> machine;
  int P = 0;
  std::atomic<CollectionId> next_coll{0};
  std::vector<std::unique_ptr<PeState>> pes;
  std::atomic<bool> exiting{false};

  // Handler ids
  std::uint32_t h_local = 0, h_entry = 0, h_create = 0, h_bcast = 0,
                h_bcast_done = 0, h_reduce = 0, h_future = 0, h_migrate = 0,
                h_loc = 0, h_insert = 0, h_done_inserting = 0,
                h_insert_count = 0, h_set_size = 0, h_size_ack = 0,
                h_lb_sync = 0, h_lb_cmd = 0, h_lb_ack = 0, h_lb_resume = 0,
                h_qd_start = 0, h_qd_probe = 0, h_qd_reply = 0,
                h_ft_failure = 0, h_ckpt = 0, h_ckpt_ack = 0, h_restore = 0,
                h_restore_ack = 0;

  // LB coordinator state (touched on PE 0 only).
  struct LbCollState {
    std::vector<ChareLoadRecord> records;
    std::uint64_t pending_acks = 0;
  };
  std::unordered_map<CollectionId, LbCollState> lb;
  LbStats lb_stats;

  // Quiescence detection state (PE 0 only).
  struct QdState {
    std::vector<Callback> waiters;
    bool wave_active = false;
    std::uint64_t phase = 0;
    int replies = 0;
    std::uint64_t sum_c = 0, sum_p = 0;
    std::uint64_t prev_c = 0, prev_p = 0;
    bool have_prev = false;
  };
  QdState qd;

  // Fault-tolerance coordinator state. Touched only on the PE that
  // drives it: failure bookkeeping and callbacks on PE 0 (the failure
  // listener routes every detection there), ack counting on whichever
  // PE called checkpoint()/restore() — one collective at a time.
  struct FtState {
    std::set<int> failed;
    std::vector<std::function<void(const cx::ft::PeFailure&)>> callbacks;
    std::uint64_t next_epoch = 0;
    std::map<std::uint64_t, int> ckpt_acks;  ///< epoch -> PEs stored
    int restore_acks = 0;
  };
  FtState ftst;

  explicit Impl(RuntimeConfig c) : cfg(std::move(c)) {
    machine = cxm::make_machine(cfg.machine);
    P = machine->num_pes();
    cx::trace::begin_run(P, machine->is_simulated());
    pes.reserve(static_cast<std::size_t>(P));
    for (int i = 0; i < P; ++i) pes.push_back(std::make_unique<PeState>());
    register_handlers();
    cx::ft::CheckpointStore::instance().reset(P);
    machine->set_failure_listener([this](const cx::ft::PeFailure& f) {
      // Route every detection (scripted crash, inject_kill, retransmit
      // give-up) to PE 0's scheduler as an uncounted control message.
      FtFailureHeader h;
      h.failure = f;
      raw_send(make_msg(h_ft_failure, 0, header_bytes(h)));
    });
  }

  [[nodiscard]] int mype() const { return machine->current_pe(); }

  std::uint32_t next_red_no(Chare& c) { return c.red_no_++; }

  PeState& me() {
    const int pe = mype();
    assert(pe >= 0 && "runtime call outside of a PE context");
    return *pes[static_cast<std::size_t>(pe)];
  }

  // ---- send helpers ------------------------------------------------------

  /// Counted application-message send.
  void rt_send(MessagePtr msg) {
    const int cp = mype();
    const int attr = cp >= 0 ? cp : msg->dst_pe;
    pes[static_cast<std::size_t>(attr)]->created++;
    machine->send(std::move(msg));
  }

  /// Uncounted send for quiescence-detection control traffic.
  void raw_send(MessagePtr msg) { machine->send(std::move(msg)); }

  MessagePtr make_msg(std::uint32_t handler, int dst,
                      std::vector<std::byte> data) {
    auto m = std::make_unique<Message>();
    m->handler = handler;
    m->dst_pe = dst;
    m->data = std::move(data);
    return m;
  }

  void send_local(int pe, LocalEnvelope env) {
    auto m = std::make_unique<Message>();
    m->handler = h_local;
    m->dst_pe = pe;
    m->local = std::make_shared<LocalEnvelope>(std::move(env));
    m->local_size = 0;
    rt_send(std::move(m));
  }

  void send_resume(Fiber* f) {
    LocalEnvelope env;
    env.kind = LocalEnvelope::Kind::Resume;
    env.fiber = f;
    send_local(mype(), std::move(env));
  }

  // ---- fibers ------------------------------------------------------------

  void run_fiber(std::function<void()> body, Chare* owner) {
    auto fib = std::make_unique<Fiber>(std::move(body));
    Fiber* f = fib.get();
    me().fibers[f] = FiberRec{std::move(fib), owner};
    resume_fiber(f);
  }

  void resume_fiber(Fiber* f) {
    auto& ps = me();
    const auto it = ps.fibers.find(f);
    if (it == ps.fibers.end()) return;  // already completed
    Chare* owner = it->second.owner;
    const double t0 = machine->now();
    CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::FiberResume, 0, 0);
    f->resume();
    const double dt = machine->now() - t0;
    if (owner) owner->load_ += dt;
    if (f->done()) {
      ps.fibers.erase(f);
    } else {
      CX_TRACE_EVENT(mype(), machine->now(),
                     cx::trace::EventKind::FiberSuspend, 0, 0);
    }
    if (owner) post_execute(owner);
  }

  // ---- element lookup / routing -----------------------------------------

  Chare* find_local(CollMeta& cm, const Index& idx) {
    const auto it = cm.elements.find(idx);
    return it == cm.elements.end() ? nullptr : it->second.get();
  }

  /// Route a fully-formed entry message (h_entry payload). Called on a PE
  /// that knows the collection but does not host the element.
  void route_entry_msg(CollMeta& cm, const Index& idx, MessagePtr msg) {
    const auto ov = cm.overrides.find(idx);
    int dst;
    if (ov != cm.overrides.end()) {
      dst = ov->second;
    } else {
      const int home = home_pe(cm.info, idx, P);
      if (home == mype()) {
        // I'm the home and have no forwarding info: the element does not
        // exist yet (creation/insertion in flight). Buffer until it does.
        cm.pending[idx].push_back(std::move(msg));
        return;
      }
      dst = home;
    }
    msg->dst_pe = dst;
    rt_send(std::move(msg));
  }

  void flush_pending(CollMeta& cm, const Index& idx) {
    const auto it = cm.pending.find(idx);
    if (it == cm.pending.end()) return;
    auto msgs = std::move(it->second);
    cm.pending.erase(it);
    for (auto& m : msgs) {
      m->dst_pe = mype();
      rt_send(std::move(m));  // re-dispatch through the scheduler
    }
  }

  void stash_msg(CollectionId coll, MessagePtr msg) {
    me().stash[coll].push_back(std::move(msg));
  }

  void flush_stash(CollectionId coll) {
    auto& ps = me();
    const auto it = ps.stash.find(coll);
    if (it == ps.stash.end()) return;
    auto msgs = std::move(it->second);
    ps.stash.erase(it);
    for (auto& m : msgs) {
      m->dst_pe = mype();
      rt_send(std::move(m));
    }
  }

  // ---- element construction ----------------------------------------------

  Chare* construct_element(CollMeta& cm, const Index& idx) {
    t_staged_coll = cm.info.id;
    t_staged_idx = idx;
    const auto& fac = Registry::instance().factory(cm.info.ctor);
    Chare* obj = fac.construct(cm.info.ctor_args.data(),
                               cm.info.ctor_args.size());
    t_staged_coll = kInvalidCollection;
    cm.elements[idx].reset(obj);
    flush_pending(cm, idx);
    return obj;
  }

  /// Enumerate the dense-array indexes whose home is this PE.
  template <typename Fn>
  void for_each_local_index(const CollectionInfo& info, Fn&& fn) {
    const std::uint64_t n = dense_size(info.dims);
    const auto up = static_cast<std::uint64_t>(P);
    const auto pe = static_cast<std::uint64_t>(mype());
    if (info.map_name == "block") {
      const std::uint64_t lo = (pe * n + up - 1) / up;
      const std::uint64_t hi = ((pe + 1) * n + up - 1) / up;
      for (std::uint64_t lin = lo; lin < hi && lin < n; ++lin) {
        fn(delinearize(lin, info.dims));
      }
    } else if (info.map_name == "rr") {
      for (std::uint64_t lin = pe; lin < n; lin += up) {
        fn(delinearize(lin, info.dims));
      }
    } else {
      const auto& map = lookup_map(info.map_name);
      for (std::uint64_t lin = 0; lin < n; ++lin) {
        const Index idx = delinearize(lin, info.dims);
        if (map(idx, info, P) == mype()) fn(idx);
      }
    }
  }

  // ---- delivery / execution ----------------------------------------------

  void deliver(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
               const ReplyTo& reply, const ReplyTo& bdone) {
    const EpInfo& info = Registry::instance().ep(ep);
    if (info.when && !info.when(obj, tuple.get())) {
      obj->buffered_.push_back({ep, std::move(tuple), reply, bdone});
      CX_TRACE_EVENT(mype(), machine->now(),
                     cx::trace::EventKind::WhenBuffer, obj->coll_,
                     obj->buffered_.size());
      return;
    }
    execute(obj, ep, std::move(tuple), reply, bdone);
  }

  void execute(Chare* obj, EpId ep, std::shared_ptr<void> tuple,
               const ReplyTo& reply, const ReplyTo& bdone) {
    const EpInfo& info = Registry::instance().ep(ep);
    const CollectionId coll = obj->coll_;
    auto body = [this, obj, ep, tuple = std::move(tuple), reply, bdone,
                 coll]() {
      Registry::instance().ep(ep).invoke(obj, tuple.get(), reply);
      if (bdone.valid()) {
        BcastDoneHeader h;
        h.coll = coll;
        h.reply = bdone;
        h.count = 1;
        rt_send(make_msg(h_bcast_done, static_cast<int>(coll) % P,
                         header_bytes(h)));
      }
    };
    if (info.threaded) {
      obj->active_fibers_++;
      run_fiber(
          [this, body = std::move(body), obj, coll, ep]() {
            // The recorded span covers the whole threaded entry, including
            // any time suspended on futures/wait (see FiberSuspend events).
            const double t0 = machine->now();
            CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::EntryBegin,
                           coll, ep);
            body();
            const double t1 = machine->now();
            CX_TRACE_EVENT(mype(), t1, cx::trace::EventKind::EntryEnd, ep,
                           static_cast<std::uint64_t>((t1 - t0) * 1e9));
            obj->active_fibers_--;
          },
          obj);
    } else {
      const double t0 = machine->now();
      CX_TRACE_EVENT(mype(), t0, cx::trace::EventKind::EntryBegin, coll, ep);
      body();
      const double t1 = machine->now();
      obj->load_ += t1 - t0;
      CX_TRACE_EVENT(mype(), t1, cx::trace::EventKind::EntryEnd, ep,
                     static_cast<std::uint64_t>((t1 - t0) * 1e9));
      post_execute(obj);
    }
  }

  /// After any entry method runs on `obj`: retry when-buffered messages,
  /// re-check wait() conditions, perform deferred migration / AtSync.
  void post_execute(Chare* obj) {
    if (obj->post_active_) return;
    obj->post_active_ = true;
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = obj->buffered_.begin(); it != obj->buffered_.end();
           ++it) {
        const EpInfo& info = Registry::instance().ep(it->ep);
        if (!info.when || info.when(obj, it->args.get())) {
          PendingInvoke pi = std::move(*it);
          obj->buffered_.erase(it);
          execute(obj, pi.ep, std::move(pi.args), pi.reply, pi.bcast_done);
          progress = true;
          break;
        }
      }
    }
    for (auto& w : obj->waits_) {
      if (!w.scheduled && w.cond()) {
        w.scheduled = true;
        send_resume(w.fiber);
      }
    }
    obj->post_active_ = false;
    if (obj->sync_pending_) {
      obj->sync_pending_ = false;
      ChareLoadRecord rec;
      rec.coll = obj->coll_;
      rec.idx = obj->idx_;
      rec.pe = mype();
      rec.load = obj->load_;
      rt_send(make_msg(h_lb_sync, 0, header_bytes(rec)));
    }
    if (obj->migrate_pending_ && obj->active_fibers_ == 0) {
      obj->migrate_pending_ = false;
      do_migrate(obj, obj->migrate_to_, obj->migrate_for_lb_);
    }
  }

  // ---- migration ----------------------------------------------------------

  void do_migrate(Chare* obj, int to_pe, bool for_lb) {
    const CollectionId coll = obj->coll_;
    const Index idx = obj->idx_;
    auto& cm = me().colls.at(coll);
    if (to_pe == mype()) {
      if (for_lb) {
        LbAckHeader h;
        h.coll = coll;
        rt_send(make_msg(h_lb_ack, 0, header_bytes(h)));
      }
      return;
    }
    if (obj->active_fibers_ > 0) {
      CX_LOG_ERROR("cannot migrate chare ", idx.to_string(),
                   " with suspended threaded entry methods");
      throw std::logic_error("migrate with active threaded entry methods");
    }
    // Re-route when-buffered deliveries to the new location.
    for (auto& pi : obj->buffered_) {
      const EpInfo& info = Registry::instance().ep(pi.ep);
      EntryHeader eh;
      eh.coll = coll;
      eh.idx = idx;
      eh.ep = pi.ep;
      eh.reply = pi.reply;
      eh.bcast_done = pi.bcast_done;
      rt_send(make_msg(h_entry, to_pe,
                       header_plus(eh, info.pack_args(pi.args.get()))));
    }
    obj->buffered_.clear();
    CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::MigrateOut,
                   coll, static_cast<std::uint64_t>(to_pe));
    // Serialize user + runtime state.
    MigrateHeader mh;
    mh.coll = coll;
    mh.idx = idx;
    mh.red_no = obj->red_no_;
    mh.for_lb = for_lb;
    pup::Sizer sz;
    obj->pup(sz);
    std::vector<std::byte> state(sz.size());
    pup::Packer pk(state.data(), state.size());
    obj->pup(pk);
    // Remove locally, install forwarder, update the home PE.
    cm.elements.erase(idx);
    cm.overrides[idx] = to_pe;
    const int home = home_pe(cm.info, idx, P);
    if (home != mype()) {
      LocUpdateHeader lh;
      lh.coll = coll;
      lh.idx = idx;
      lh.pe = to_pe;
      rt_send(make_msg(h_loc, home, header_bytes(lh)));
    }
    rt_send(make_msg(h_migrate, to_pe, header_plus(mh, state)));
  }

  // ---- callbacks / futures -------------------------------------------------

  void fulfill_future(FutureId fid, std::vector<std::byte>&& bytes) {
    auto& slot = me().futures[fid];
    slot.value = std::move(bytes);
    if (slot.waiter != nullptr) {
      Fiber* f = slot.waiter;
      slot.waiter = nullptr;
      send_resume(f);
    }
  }

  void send_future_bytes(const ReplyTo& f, std::vector<std::byte>&& bytes) {
    if (!f.valid()) return;
    if (f.pe == mype()) {
      fulfill_future(f.fid, std::move(bytes));
      return;
    }
    FutureHeader h;
    h.fid = f.fid;
    rt_send(make_msg(h_future, f.pe, header_plus(h, bytes)));
  }

  void deliver_callback(const Callback& cb, std::vector<std::byte>&& bytes) {
    switch (cb.kind) {
      case Callback::Kind::Ignore:
        return;
      case Callback::Kind::Future:
        send_future_bytes(cb.future, std::move(bytes));
        return;
      case Callback::Kind::Element: {
        EntryHeader h;
        h.coll = cb.coll;
        h.idx = cb.idx;
        h.ep = cb.ep;
        rt_send(make_msg(h_entry, mype(), header_plus(h, bytes)));
        return;
      }
      case Callback::Kind::Broadcast: {
        BcastHeader h;
        h.coll = cb.coll;
        h.ep = cb.ep;
        h.root = mype();
        rt_send(make_msg(h_bcast, mype(), header_plus(h, bytes)));
        return;
      }
      case Callback::Kind::SparseCount: {
        // All inserts have landed (quiescence): count elements per PE.
        DoneInsertingHeader h;
        h.coll = cb.coll;
        h.root = mype();
        h.reply = cb.future;
        rt_send(make_msg(h_done_inserting, mype(), header_bytes(h)));
        return;
      }
    }
  }

  // ---- LB coordinator (PE 0) ------------------------------------------------

  void lb_round(CollectionId coll, LbCollState& st) {
    const auto& strategy = lookup_lb_strategy(cfg.lb_strategy);
    auto moves = strategy(st.records, P, cfg.seed + lb_stats.rounds);
    CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::LbDecision,
                   moves.size(), st.records.size());
    lb_stats.rounds++;
    lb_stats.migrations += moves.size();
    lb_stats.last_imbalance_before = imbalance_ratio(st.records, P);
    auto after = st.records;
    for (const auto& mv : moves) {
      for (auto& r : after) {
        if (r.idx == mv.idx && r.pe == mv.from_pe) {
          r.pe = mv.to_pe;
          break;
        }
      }
    }
    lb_stats.last_imbalance_after = imbalance_ratio(after, P);
    st.records.clear();
    if (moves.empty()) {
      broadcast_lb_resume(coll);
      return;
    }
    st.pending_acks = moves.size();
    for (const auto& mv : moves) {
      LbCmdHeader h;
      h.coll = coll;
      h.idx = mv.idx;
      h.to_pe = mv.to_pe;
      rt_send(make_msg(h_lb_cmd, mv.from_pe, header_bytes(h)));
    }
  }

  void broadcast_lb_resume(CollectionId coll) {
    LbResumeHeader h;
    h.coll = coll;
    h.root = mype();
    rt_send(make_msg(h_lb_resume, mype(), header_bytes(h)));
  }

  // ---- quiescence (PE 0) ----------------------------------------------------

  void qd_start_wave() {
    qd.wave_active = true;
    qd.phase++;
    qd.replies = 0;
    qd.sum_c = 0;
    qd.sum_p = 0;
    QdProbeHeader h;
    h.phase = qd.phase;
    for (int pe = 0; pe < P; ++pe) {
      raw_send(make_msg(h_qd_probe, pe, header_bytes(h)));
    }
  }

  // ---- handlers ---------------------------------------------------------------

  void register_handlers();
  void on_local(MessagePtr msg);
  void on_entry(MessagePtr msg);
  void on_create(MessagePtr msg);
  void on_bcast(MessagePtr msg);
  void on_bcast_done(MessagePtr msg);
  void on_reduce(MessagePtr msg);
  void on_future(MessagePtr msg);
  void on_migrate(MessagePtr msg);
  void on_loc(MessagePtr msg);
  void on_insert(MessagePtr msg);
  void on_done_inserting(MessagePtr msg);
  void on_insert_count(MessagePtr msg);
  void on_set_size(MessagePtr msg);
  void on_size_ack(MessagePtr msg);
  void on_lb_sync(MessagePtr msg);
  void on_lb_cmd(MessagePtr msg);
  void on_lb_ack(MessagePtr msg);
  void on_lb_resume(MessagePtr msg);
  void on_qd_start(MessagePtr msg);
  void on_qd_probe(MessagePtr msg);
  void on_qd_reply(MessagePtr msg);
  void on_ft_failure(MessagePtr msg);
  void on_ckpt(MessagePtr msg);
  void on_ckpt_ack(MessagePtr msg);
  void on_restore(MessagePtr msg);
  void on_restore_ack(MessagePtr msg);
};

void Runtime::Impl::register_handlers() {
  auto reg = [&](void (Impl::*fn)(MessagePtr)) {
    return machine->register_handler(
        [this, fn](MessagePtr m) { (this->*fn)(std::move(m)); });
  };
  h_local = reg(&Impl::on_local);
  h_entry = reg(&Impl::on_entry);
  h_create = reg(&Impl::on_create);
  h_bcast = reg(&Impl::on_bcast);
  h_bcast_done = reg(&Impl::on_bcast_done);
  h_reduce = reg(&Impl::on_reduce);
  h_future = reg(&Impl::on_future);
  h_migrate = reg(&Impl::on_migrate);
  h_loc = reg(&Impl::on_loc);
  h_insert = reg(&Impl::on_insert);
  h_done_inserting = reg(&Impl::on_done_inserting);
  h_insert_count = reg(&Impl::on_insert_count);
  h_set_size = reg(&Impl::on_set_size);
  h_size_ack = reg(&Impl::on_size_ack);
  h_lb_sync = reg(&Impl::on_lb_sync);
  h_lb_cmd = reg(&Impl::on_lb_cmd);
  h_lb_ack = reg(&Impl::on_lb_ack);
  h_lb_resume = reg(&Impl::on_lb_resume);
  h_qd_start = reg(&Impl::on_qd_start);
  h_qd_probe = reg(&Impl::on_qd_probe);
  h_qd_reply = reg(&Impl::on_qd_reply);
  // ft handlers stay at the end: earlier ids are wire-stable across the
  // pre-ft message-count baselines.
  h_ft_failure = reg(&Impl::on_ft_failure);
  h_ckpt = reg(&Impl::on_ckpt);
  h_ckpt_ack = reg(&Impl::on_ckpt_ack);
  h_restore = reg(&Impl::on_restore);
  h_restore_ack = reg(&Impl::on_restore_ack);
}

void Runtime::Impl::on_local(MessagePtr msg) {
  auto* env = static_cast<LocalEnvelope*>(msg->local.get());
  if (env->kind == LocalEnvelope::Kind::Timer) {
    // Timers ride on Machine::send_after, which is uncounted: no
    // processed++ here, or quiescence detection would never settle.
    auto& ps = me();
    const auto it = ps.timer_waiters.find(env->timer_token);
    if (it == ps.timer_waiters.end()) return;  // disarmed: value arrived
    Fiber* f = it->second;
    ps.timer_waiters.erase(it);
    resume_fiber(f);
    return;
  }
  me().processed++;
  switch (env->kind) {
    case LocalEnvelope::Kind::Start:
      run_fiber(std::move(env->fn), nullptr);
      return;
    case LocalEnvelope::Kind::Resume:
      resume_fiber(env->fiber);
      return;
    case LocalEnvelope::Kind::Entry: {
      auto& ps = me();
      const auto it = ps.colls.find(env->coll);
      auto to_remote = [&]() {
        EntryHeader h;
        h.coll = env->coll;
        h.idx = env->idx;
        h.ep = env->ep;
        h.reply = env->reply;
        h.bcast_done = env->bcast_done;
        return make_msg(h_entry, mype(),
                        header_plus(h, env->pack(env->tuple.get())));
      };
      if (it == ps.colls.end()) {
        stash_msg(env->coll, to_remote());
        return;
      }
      CollMeta& cm = it->second;
      if (Chare* obj = find_local(cm, env->idx)) {
        deliver(obj, env->ep, std::move(env->tuple), env->reply,
                env->bcast_done);
      } else {
        // Element moved between send and delivery: fall back to bytes.
        route_entry_msg(cm, env->idx, to_remote());
      }
      return;
    }
    case LocalEnvelope::Kind::Timer:
      return;  // handled above
  }
}

void Runtime::Impl::on_entry(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  EntryHeader h;
  u | h;
  auto& ps = me();
  const auto it = ps.colls.find(h.coll);
  if (it == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = it->second;
  if (Chare* obj = find_local(cm, h.idx)) {
    const EpInfo& info = Registry::instance().ep(h.ep);
    auto tuple = info.unpack(u);
    deliver(obj, h.ep, std::move(tuple), h.reply, h.bcast_done);
  } else {
    route_entry_msg(cm, h.idx, std::move(msg));
  }
}

void Runtime::Impl::on_create(MessagePtr msg) {
  me().processed++;
  CreateHeader h = pup::from_bytes<CreateHeader>(msg->data);
  // Forward down the creation tree first.
  std::vector<int> kids;
  tree_children(mype(), h.root, P, kids);
  for (int k : kids) {
    auto copy = make_msg(h_create, k, msg->data);
    rt_send(std::move(copy));
  }
  auto& cm = me().colls[h.info.id];
  cm.info = h.info;
  switch (h.info.kind) {
    case CollectionKind::Singleton:
      if (h.info.fixed_pe == mype()) construct_element(cm, Index(0));
      break;
    case CollectionKind::Group:
      construct_element(cm, Index(mype()));
      break;
    case CollectionKind::Array:
      for_each_local_index(h.info,
                           [&](const Index& idx) { construct_element(cm, idx); });
      break;
    case CollectionKind::SparseArray:
      break;
  }
  flush_stash(h.info.id);
}

void Runtime::Impl::on_bcast(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  BcastHeader h;
  u | h;
  const std::size_t args_off = u.offset();
  auto& ps = me();
  const auto it = ps.colls.find(h.coll);
  if (h.root != -2) {
    std::vector<int> kids;
    tree_children(mype(), h.root, P, kids);
    for (int k : kids) rt_send(make_msg(h_bcast, k, msg->data));
  }
  if (it == ps.colls.end()) {
    // Keep local delivery for later; mark as forward-complete.
    BcastHeader h2 = h;
    h2.root = -2;
    std::vector<std::byte> data = header_bytes(h2);
    data.insert(data.end(), msg->data.begin() + static_cast<long>(args_off),
                msg->data.end());
    stash_msg(h.coll, make_msg(h_bcast, mype(), std::move(data)));
    return;
  }
  CollMeta& cm = it->second;
  const EpInfo& info = Registry::instance().ep(h.ep);
  // Deliver to each local element with a freshly unpacked argument tuple.
  std::vector<Chare*> local;
  local.reserve(cm.elements.size());
  for (auto& [idx, obj] : cm.elements) local.push_back(obj.get());
  for (Chare* obj : local) {
    pup::Unpacker ue(msg->data.data(), msg->data.size());
    BcastHeader dummy;
    ue | dummy;
    auto tuple = info.unpack(ue);
    deliver(obj, h.ep, std::move(tuple), {}, h.reply);
  }
}

void Runtime::Impl::on_bcast_done(MessagePtr msg) {
  me().processed++;
  BcastDoneHeader h = pup::from_bytes<BcastDoneHeader>(msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  const auto key = std::make_pair(h.reply.pe, h.reply.fid);
  auto& count = ps.bcast_done_root[key];
  count += h.count;
  if (count >= cit->second.info.size) {
    ps.bcast_done_root.erase(key);
    send_future_bytes(h.reply, {});
  }
}

void Runtime::Impl::on_reduce(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  ReduceHeader h;
  u | h;
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  std::vector<std::byte> value(msg->data.begin() + static_cast<long>(u.offset()),
                               msg->data.end());
  auto& rs = ps.red_root[{h.coll, h.red_no}];
  rs.count += h.count;
  if (h.combiner != kNoCombine) {
    if (!rs.has_acc) {
      rs.acc = std::move(value);
      rs.has_acc = true;
      rs.combiner = h.combiner;
    } else {
      rs.acc = CombinerRegistry::instance().get(h.combiner)(rs.acc, value);
    }
  }
  if (h.cb.kind != Callback::Kind::Ignore) rs.cb = h.cb;
  const auto& info = cit->second.info;
  if (!info.inserting && rs.count >= info.size) {
    Callback cb = rs.cb;
    std::vector<std::byte> acc = std::move(rs.acc);
    ps.red_root.erase({h.coll, h.red_no});
    CX_TRACE_EVENT(mype(), machine->now(),
                   cx::trace::EventKind::RedDeliver, h.coll, h.red_no);
    deliver_callback(cb, std::move(acc));
  }
}

void Runtime::Impl::on_future(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  FutureHeader h;
  u | h;
  std::vector<std::byte> value(msg->data.begin() + static_cast<long>(u.offset()),
                               msg->data.end());
  fulfill_future(h.fid, std::move(value));
}

void Runtime::Impl::on_migrate(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  MigrateHeader h;
  u | h;
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = cit->second;
  const auto& fac = Registry::instance().factory(cm.info.ctor);
  if (fac.construct_default == nullptr) {
    CX_LOG_ERROR("chare type of collection ", h.coll,
                 " is not default-constructible; cannot migrate");
    throw std::logic_error("migration requires default-constructible chare");
  }
  t_staged_coll = h.coll;
  t_staged_idx = h.idx;
  Chare* obj = fac.construct_default();
  t_staged_coll = kInvalidCollection;
  obj->pup(u);
  obj->red_no_ = h.red_no;
  obj->load_ = 0.0;
  cm.elements[h.idx].reset(obj);
  cm.overrides.erase(h.idx);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::MigrateIn,
                 h.coll, 0);
  obj->on_migrated();
  flush_pending(cm, h.idx);
  if (h.for_lb) {
    LbAckHeader ah;
    ah.coll = h.coll;
    rt_send(make_msg(h_lb_ack, 0, header_bytes(ah)));
  }
  post_execute(obj);
}

void Runtime::Impl::on_loc(MessagePtr msg) {
  me().processed++;
  LocUpdateHeader h = pup::from_bytes<LocUpdateHeader>(msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = cit->second;
  if (h.pe == mype()) {
    cm.overrides.erase(h.idx);
  } else {
    cm.overrides[h.idx] = h.pe;
  }
  flush_pending(cm, h.idx);
}

void Runtime::Impl::on_insert(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  InsertHeader h;
  u | h;
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = cit->second;
  std::vector<std::byte> args(msg->data.begin() + static_cast<long>(u.offset()),
                              msg->data.end());
  if (!h.routed) {
    // Placement phase: this PE now knows the collection; resolve the
    // destination and hand the element over for construction.
    const int home = home_pe(cm.info, h.idx, P);
    const int dst = h.on_pe >= 0 ? h.on_pe : home;
    InsertHeader out = h;
    out.routed = true;
    rt_send(make_msg(h_insert, dst, header_plus(out, args)));
    if (dst != home) {
      LocUpdateHeader lh;
      lh.coll = h.coll;
      lh.idx = h.idx;
      lh.pe = dst;
      rt_send(make_msg(h_loc, home, header_bytes(lh)));
    }
    return;
  }
  t_staged_coll = h.coll;
  t_staged_idx = h.idx;
  const auto& fac = Registry::instance().factory(h.ctor);
  Chare* obj = fac.construct(args.data(), args.size());
  t_staged_coll = kInvalidCollection;
  cm.elements[h.idx].reset(obj);
  flush_pending(cm, h.idx);
  post_execute(obj);
}

void Runtime::Impl::on_done_inserting(MessagePtr msg) {
  me().processed++;
  DoneInsertingHeader h = pup::from_bytes<DoneInsertingHeader>(msg->data);
  std::vector<int> kids;
  tree_children(mype(), h.root, P, kids);
  for (int k : kids) rt_send(make_msg(h_done_inserting, k, msg->data));
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  const std::uint64_t n =
      cit == ps.colls.end() ? 0 : cit->second.elements.size();
  InsertCountHeader ch;
  ch.coll = h.coll;
  ch.count = n;
  ch.reply = h.reply;
  rt_send(make_msg(h_insert_count, static_cast<int>(h.coll) % P,
                   header_bytes(ch)));
}

void Runtime::Impl::on_insert_count(MessagePtr msg) {
  me().processed++;
  InsertCountHeader h = pup::from_bytes<InsertCountHeader>(msg->data);
  auto& ps = me();
  auto& [total, reports] = ps.ins_count[h.coll];
  total += h.count;
  reports++;
  if (reports == P) {
    SetSizeHeader sh;
    sh.coll = h.coll;
    sh.size = total;
    sh.root = mype();
    sh.reply = h.reply;
    ps.ins_count.erase(h.coll);
    rt_send(make_msg(h_set_size, mype(), header_bytes(sh)));
  }
}

void Runtime::Impl::on_set_size(MessagePtr msg) {
  me().processed++;
  SetSizeHeader h = pup::from_bytes<SetSizeHeader>(msg->data);
  std::vector<int> kids;
  tree_children(mype(), h.root, P, kids);
  for (int k : kids) rt_send(make_msg(h_set_size, k, msg->data));
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  cit->second.info.size = h.size;
  cit->second.info.inserting = false;
  SizeAckHeader ack;
  ack.coll = h.coll;
  ack.reply = h.reply;
  rt_send(make_msg(h_size_ack, static_cast<int>(h.coll) % P,
                   header_bytes(ack)));
  // Reductions rooted here may now be complete.
  if (static_cast<int>(h.coll) % P == mype()) {
    std::vector<std::pair<CollectionId, std::uint32_t>> fire;
    for (auto& [key, rs] : ps.red_root) {
      if (key.first == h.coll && rs.count >= h.size) fire.push_back(key);
    }
    for (const auto& key : fire) {
      auto node = ps.red_root.extract(key);
      deliver_callback(node.mapped().cb, std::move(node.mapped().acc));
    }
  }
}

void Runtime::Impl::on_size_ack(MessagePtr msg) {
  me().processed++;
  SizeAckHeader h = pup::from_bytes<SizeAckHeader>(msg->data);
  auto& acks = me().size_acks[h.coll];
  if (++acks == P) {
    me().size_acks.erase(h.coll);
    send_future_bytes(h.reply, {});
  }
}

void Runtime::Impl::on_lb_sync(MessagePtr msg) {
  me().processed++;
  ChareLoadRecord rec = pup::from_bytes<ChareLoadRecord>(msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(rec.coll);
  if (cit == ps.colls.end()) {
    stash_msg(rec.coll, std::move(msg));
    return;
  }
  auto& st = lb[rec.coll];
  st.records.push_back(rec);
  if (st.records.size() >= cit->second.info.size) {
    lb_round(rec.coll, st);
  }
}

void Runtime::Impl::on_lb_cmd(MessagePtr msg) {
  me().processed++;
  LbCmdHeader h = pup::from_bytes<LbCmdHeader>(msg->data);
  auto& ps = me();
  auto& cm = ps.colls.at(h.coll);
  Chare* obj = find_local(cm, h.idx);
  if (obj == nullptr) {
    CX_LOG_ERROR("LB command for non-local chare ", h.idx.to_string());
    return;
  }
  do_migrate(obj, h.to_pe, /*for_lb=*/true);
}

void Runtime::Impl::on_lb_ack(MessagePtr msg) {
  me().processed++;
  LbAckHeader h = pup::from_bytes<LbAckHeader>(msg->data);
  auto& st = lb[h.coll];
  if (st.pending_acks > 0 && --st.pending_acks == 0) {
    broadcast_lb_resume(h.coll);
  }
}

void Runtime::Impl::on_lb_resume(MessagePtr msg) {
  me().processed++;
  LbResumeHeader h = pup::from_bytes<LbResumeHeader>(msg->data);
  std::vector<int> kids;
  tree_children(mype(), h.root, P, kids);
  for (int k : kids) rt_send(make_msg(h_lb_resume, k, msg->data));
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) return;
  std::vector<Chare*> local;
  for (auto& [idx, obj] : cit->second.elements) local.push_back(obj.get());
  for (Chare* obj : local) {
    obj->load_ = 0.0;
    obj->resume_from_sync();
    post_execute(obj);
  }
}

void Runtime::Impl::on_qd_start(MessagePtr msg) {
  QdStartHeader h = pup::from_bytes<QdStartHeader>(msg->data);
  qd.waiters.push_back(h.cb);
  if (!qd.wave_active) {
    qd.have_prev = false;
    qd_start_wave();
  }
}

void Runtime::Impl::on_qd_probe(MessagePtr msg) {
  QdProbeHeader h = pup::from_bytes<QdProbeHeader>(msg->data);
  QdReplyHeader r;
  r.phase = h.phase;
  r.created = me().created;
  r.processed = me().processed;
  raw_send(make_msg(h_qd_reply, 0, header_bytes(r)));
}

void Runtime::Impl::on_qd_reply(MessagePtr msg) {
  QdReplyHeader h = pup::from_bytes<QdReplyHeader>(msg->data);
  if (h.phase != qd.phase) return;
  qd.sum_c += h.created;
  qd.sum_p += h.processed;
  if (++qd.replies < P) return;
  const bool settled = qd.sum_c == qd.sum_p;
  const bool stable =
      qd.have_prev && qd.sum_c == qd.prev_c && qd.sum_p == qd.prev_p;
  if (settled && stable) {
    auto waiters = std::move(qd.waiters);
    qd.waiters.clear();
    qd.wave_active = false;
    qd.have_prev = false;
    for (const auto& cb : waiters) deliver_callback(cb, {});
    return;
  }
  qd.prev_c = qd.sum_c;
  qd.prev_p = qd.sum_p;
  qd.have_prev = true;
  qd_start_wave();
}

// ---- cx::ft handlers (all uncounted control traffic: no processed++) -----

void Runtime::Impl::on_ft_failure(MessagePtr msg) {
  FtFailureHeader h = pup::from_bytes<FtFailureHeader>(msg->data);
  const int pe = h.failure.pe;
  if (pe < 0 || pe >= P) return;
  if (!ftst.failed.insert(pe).second) return;  // already known
  CX_LOG_WARN("cx::ft: PE ", pe, " failed (",
              cx::ft::failure_kind_name(h.failure.kind),
              ") at t=", h.failure.time);
  // Its local checkpoint memory died with it; the buddy copy remains.
  cx::ft::CheckpointStore::instance().drop_primary(pe);
  auto cbs = ftst.callbacks;  // a callback may register further callbacks
  for (auto& cb : cbs) cb(h.failure);
}

void Runtime::Impl::on_ckpt(MessagePtr msg) {
  CkptHeader h = pup::from_bytes<CkptHeader>(msg->data);
  auto& ps = me();
  PeBlob blob;
  blob.created = ps.created;
  blob.processed = ps.processed;
  blob.next_future = ps.next_future;
  std::vector<CollectionId> cids;
  cids.reserve(ps.colls.size());
  for (auto& [cid, cm] : ps.colls) cids.push_back(cid);
  std::sort(cids.begin(), cids.end());
  for (const CollectionId cid : cids) {
    CollMeta& cm = ps.colls.at(cid);
    CollBlob cb;
    cb.info = cm.info;
    std::vector<Index> order;
    order.reserve(cm.elements.size());
    for (auto& [idx, obj] : cm.elements) order.push_back(idx);
    std::sort(order.begin(), order.end());
    for (const Index& idx : order) {
      Chare* obj = cm.elements.at(idx).get();
      ElementBlob eb;
      eb.idx = idx;
      eb.red_no = obj->red_no_;
      pup::Sizer sz;
      obj->pup(sz);
      eb.state.resize(sz.size());
      pup::Packer pk(eb.state.data(), eb.state.size());
      obj->pup(pk);
      cb.elements.push_back(std::move(eb));
    }
    order.clear();
    for (auto& [idx, pe] : cm.overrides) order.push_back(idx);
    std::sort(order.begin(), order.end());
    for (const Index& idx : order) {
      cb.overrides.push_back({idx, cm.overrides.at(idx)});
    }
    blob.colls.push_back(std::move(cb));
  }
  for (auto& [key, rs] : ps.red_root) {
    RedBlob rb;
    rb.coll = key.first;
    rb.red_no = key.second;
    rb.count = rs.count;
    rb.has_acc = rs.has_acc;
    rb.acc = rs.acc;
    rb.combiner = rs.combiner;
    rb.cb = rs.cb;
    blob.reductions.push_back(std::move(rb));
  }
  auto bytes = pup::to_bytes(blob);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::FtCheckpoint,
                 h.epoch, bytes.size());
  cx::ft::CheckpointStore::instance().store(mype(), h.epoch,
                                            std::move(bytes));
  CkptAckHeader a;
  a.epoch = h.epoch;
  a.reply = h.reply;
  raw_send(make_msg(h_ckpt_ack, h.reply.pe, header_bytes(a)));
}

void Runtime::Impl::on_ckpt_ack(MessagePtr msg) {
  CkptAckHeader h = pup::from_bytes<CkptAckHeader>(msg->data);
  if (++ftst.ckpt_acks[h.epoch] < P) return;
  ftst.ckpt_acks.erase(h.epoch);
  send_future_bytes(h.reply, {});
}

void Runtime::Impl::on_restore(MessagePtr msg) {
  RestoreHeader h = pup::from_bytes<RestoreHeader>(msg->data);
  auto& ps = me();
  // Discard post-checkpoint scheduler state. Futures and live fibers
  // survive: the restore driver itself is suspended on one.
  ps.colls.clear();
  ps.stash.clear();
  ps.red_root.clear();
  ps.bcast_done_root.clear();
  ps.ins_count.clear();
  ps.size_acks.clear();
  if (mype() == 0) {
    lb.clear();
    qd = QdState{};
  }
  const auto bytes = cx::ft::CheckpointStore::instance().latest(mype());
  if (!bytes.empty()) {
    PeBlob blob = pup::from_bytes<PeBlob>(bytes);
    for (auto& cb : blob.colls) {
      CollMeta& cm = ps.colls[cb.info.id];
      cm.info = cb.info;
      const auto& fac = Registry::instance().factory(cb.info.ctor);
      if (fac.construct_default == nullptr) {
        CX_LOG_ERROR("chare type of collection ", cb.info.id,
                     " is not default-constructible; cannot restore");
        throw std::logic_error(
            "restore requires default-constructible chares");
      }
      for (auto& eb : cb.elements) {
        t_staged_coll = cb.info.id;
        t_staged_idx = eb.idx;
        Chare* obj = fac.construct_default();
        t_staged_coll = kInvalidCollection;
        pup::Unpacker u(eb.state.data(), eb.state.size());
        obj->pup(u);
        obj->red_no_ = eb.red_no;
        obj->load_ = 0.0;
        cm.elements[eb.idx].reset(obj);
        obj->on_migrated();
      }
      for (auto& ob : cb.overrides) cm.overrides[ob.idx] = ob.pe;
    }
    for (auto& rb : blob.reductions) {
      RedState rs;
      rs.count = rb.count;
      rs.has_acc = rb.has_acc;
      rs.acc = rb.acc;
      rs.combiner = rb.combiner;
      rs.cb = rb.cb;
      ps.red_root[{rb.coll, rb.red_no}] = std::move(rs);
    }
    // Roll the quiescence counters back too, so created/processed match
    // a run that never diverged from this checkpoint.
    ps.created = blob.created;
    ps.processed = blob.processed;
    // Same for the future-id counter: element state PUPs callbacks,
    // which embed future ids, so a restored run must re-issue the ids a
    // never-diverged run would (the digest tests compare them). Stale
    // post-checkpoint slots are dropped; a slot with a suspended waiter
    // (the restore ack the driver itself blocks on) survives, and
    // make_future_slot skips over any survivor when reallocating.
    for (auto it = ps.futures.begin(); it != ps.futures.end();) {
      if (it->first > blob.next_future && it->second.waiter == nullptr) {
        it = ps.futures.erase(it);
      } else {
        ++it;
      }
    }
    ps.next_future = blob.next_future;
  }
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::FtRestore,
                 h.epoch, bytes.size());
  RestoreAckHeader a;
  a.reply = h.reply;
  raw_send(make_msg(h_restore_ack, h.reply.pe, header_bytes(a)));
}

void Runtime::Impl::on_restore_ack(MessagePtr msg) {
  RestoreAckHeader h = pup::from_bytes<RestoreAckHeader>(msg->data);
  if (++ftst.restore_acks < P) return;
  ftst.restore_acks = 0;
  send_future_bytes(h.reply, {});
}

// ---------------------------------------------------------------------------
// Runtime public API

Runtime::Runtime(RuntimeConfig cfg) : impl_(new Impl(std::move(cfg))) {
  if (g_runtime != nullptr) {
    throw std::logic_error("only one cx::Runtime may exist at a time");
  }
  g_runtime = this;
}

Runtime::~Runtime() { g_runtime = nullptr; }

void Runtime::run(std::function<void()> entry) {
  LocalEnvelope env;
  env.kind = LocalEnvelope::Kind::Start;
  env.fn = std::move(entry);
  auto m = std::make_unique<Message>();
  m->handler = impl_->h_local;
  m->dst_pe = 0;
  m->local = std::make_shared<LocalEnvelope>(std::move(env));
  impl_->rt_send(std::move(m));
  impl_->machine->run();
}

void Runtime::exit() {
  impl_->exiting.store(true);
  impl_->machine->stop();
}

int Runtime::num_pes() const noexcept { return impl_->P; }
int Runtime::my_pe() const noexcept { return impl_->machine->current_pe(); }
double Runtime::now() const { return impl_->machine->now(); }
void Runtime::compute(double seconds) { impl_->machine->compute(seconds); }
void Runtime::charge(double seconds) { impl_->machine->charge(seconds); }
bool Runtime::is_simulated() const noexcept {
  return impl_->machine->is_simulated();
}

double Runtime::sim_makespan() const {
  auto* sm = dynamic_cast<cxm::SimMachine*>(impl_->machine.get());
  return sm != nullptr ? sm->makespan() : 0.0;
}

cxm::Machine& Runtime::machine() noexcept { return *impl_->machine; }

void Runtime::start_quiescence(const Callback& target) {
  QdStartHeader h;
  h.cb = target;
  impl_->raw_send(impl_->make_msg(impl_->h_qd_start, 0, header_bytes(h)));
}

Runtime::LbStats Runtime::lb_stats() const { return impl_->lb_stats; }

std::uint64_t Runtime::messages_sent() const {
  std::uint64_t total = 0;
  for (const auto& ps : impl_->pes) total += ps->created;
  return total;
}

Runtime& Runtime::current() {
  if (g_runtime == nullptr) {
    throw std::logic_error("no cx::Runtime is active");
  }
  return *g_runtime;
}

bool Runtime::has_current() noexcept { return g_runtime != nullptr; }

// ---------------------------------------------------------------------------
// Chare services

Chare::Chare() : coll_(t_staged_coll), idx_(t_staged_idx) {}

void Chare::wait(std::function<bool()> cond) {
  if (cond()) return;
  Fiber* f = Fiber::current();
  if (f == nullptr) {
    throw std::logic_error(
        "wait() requires a threaded entry method (set_threaded<M>())");
  }
  for (;;) {
    waits_.push_back({cond, f, false});
    Fiber::yield();
    for (auto it = waits_.begin(); it != waits_.end(); ++it) {
      if (it->fiber == f) {
        waits_.erase(it);
        break;
      }
    }
    if (cond()) return;
  }
}

void Chare::migrate(int to_pe) {
  migrate_pending_ = true;
  migrate_for_lb_ = false;
  migrate_to_ = to_pe;
}

void Chare::at_sync() { sync_pending_ = true; }

void Chare::contribute(const Callback& target) {
  detail::contribute_bytes(*this, {}, kNoCombine, target);
}

// ---------------------------------------------------------------------------
// detail:: bridge used by the header-only templates

namespace detail {

namespace {
// The paper's same-process by-reference optimization (SecII-D) can be
// disabled for ablation studies (bench/micro_messaging) — also via the
// CHARMX_NO_LOCAL_FASTPATH environment variable.
std::atomic<bool> g_local_fastpath{
    std::getenv("CHARMX_NO_LOCAL_FASTPATH") == nullptr};
}  // namespace

bool local_fastpath_enabled() noexcept {
  return g_local_fastpath.load(std::memory_order_relaxed);
}

void set_local_fastpath(bool on) noexcept {
  g_local_fastpath.store(on, std::memory_order_relaxed);
}

void reply_with_bytes(const ReplyTo& reply, std::vector<std::byte>&& bytes) {
  Runtime::current().impl().send_future_bytes(reply, std::move(bytes));
}

void proxy_send(CollectionId coll, const Index& idx, EpId ep,
                ArgsCarrier args, const ReplyTo& reply,
                std::uint64_t nominal_bytes) {
  auto& I = Runtime::current().impl();
  auto& ps = I.me();
  const auto it = ps.colls.find(coll);
  if (local_fastpath_enabled() && it != ps.colls.end() &&
      it->second.elements.count(idx) != 0) {
    // Same-PE fast path: hand the live tuple over, no serialization
    // (paper §II-D). The caller gave up ownership of the arguments.
    LocalEnvelope env;
    env.kind = LocalEnvelope::Kind::Entry;
    env.coll = coll;
    env.idx = idx;
    env.ep = ep;
    env.tuple = std::move(args.tuple);
    env.pack = args.pack;
    env.reply = reply;
    I.send_local(I.mype(), std::move(env));
    return;
  }
  EntryHeader h;
  h.coll = coll;
  h.idx = idx;
  h.ep = ep;
  h.reply = reply;
  auto msg = I.make_msg(I.h_entry, I.mype(), header_plus(h, args.packed()));
  msg->size_override = nominal_bytes;
  if (it == ps.colls.end()) {
    I.stash_msg(coll, std::move(msg));
    return;
  }
  if (it->second.elements.count(idx) != 0) {
    // Local element but the by-reference fast path is disabled: deliver
    // the packed message through the scheduler (full serialize cycle).
    I.rt_send(std::move(msg));
    return;
  }
  I.route_entry_msg(it->second, idx, std::move(msg));
}

void proxy_broadcast(CollectionId coll, EpId ep, ArgsCarrier args,
                     const ReplyTo& reply) {
  auto& I = Runtime::current().impl();
  BcastHeader h;
  h.coll = coll;
  h.ep = ep;
  h.reply = reply;
  h.root = I.mype();
  I.rt_send(I.make_msg(I.h_bcast, I.mype(), header_plus(h, args.packed())));
}

CollectionId create_collection(CollectionKind kind, const Index& dims,
                               int ndims, FactoryId ctor,
                               std::vector<std::byte> ctor_args,
                               const std::string& map_name, int fixed_pe) {
  auto& I = Runtime::current().impl();
  if (I.mype() < 0) {
    throw std::logic_error("collections must be created from a PE context");
  }
  const CollectionId id = I.next_coll.fetch_add(1);
  CollectionInfo info;
  info.id = id;
  info.kind = kind;
  info.dims = dims;
  info.ndims = ndims;
  info.ctor = ctor;
  info.ctor_args = std::move(ctor_args);
  info.map_name = map_name;
  switch (kind) {
    case CollectionKind::Singleton:
      info.size = 1;
      info.fixed_pe =
          fixed_pe >= 0
              ? fixed_pe
              : static_cast<int>((id * 2654435761u) %
                                 static_cast<std::uint32_t>(I.P));
      break;
    case CollectionKind::Group:
      info.size = static_cast<std::uint64_t>(I.P);
      break;
    case CollectionKind::Array:
      info.size = dense_size(dims);
      break;
    case CollectionKind::SparseArray:
      info.size = 0;
      info.inserting = true;
      break;
  }
  CreateHeader h;
  h.info = std::move(info);
  h.root = I.mype();
  I.rt_send(I.make_msg(I.h_create, I.mype(), header_bytes(h)));
  return id;
}

void sparse_insert(CollectionId coll, const Index& idx, FactoryId ctor,
                   std::vector<std::byte> ctor_args, int on_pe) {
  auto& I = Runtime::current().impl();
  // Route via a self-message: if the creation broadcast hasn't reached
  // this PE yet, the message is stashed and retried once it has.
  InsertHeader h;
  h.coll = coll;
  h.idx = idx;
  h.ctor = ctor;
  h.on_pe = on_pe;
  h.routed = false;
  I.rt_send(I.make_msg(I.h_insert, I.mype(), header_plus(h, ctor_args)));
}

void sparse_done_inserting(CollectionId coll, const ReplyTo& reply) {
  // Finalizing the size is only meaningful once every in-flight insert
  // has landed; quiescence detection guarantees exactly that.
  Callback c;
  c.kind = Callback::Kind::SparseCount;
  c.coll = coll;
  c.future = reply;
  Runtime::current().start_quiescence(c);
}

void contribute_bytes(Chare& chare, std::vector<std::byte> value,
                      CombineId combiner, const Callback& target) {
  auto& I = Runtime::current().impl();
  ReduceHeader h;
  h.coll = chare.collection();
  h.red_no = I.next_red_no(chare);
  CX_TRACE_EVENT(I.mype(), I.machine->now(),
                 cx::trace::EventKind::RedContribute, h.coll, h.red_no);
  h.combiner = combiner;
  h.cb = target;
  h.count = 1;
  I.rt_send(I.make_msg(I.h_reduce, static_cast<int>(h.coll) % I.P,
                       header_plus(h, value)));
}

ReplyTo make_future_slot() {
  auto& I = Runtime::current().impl();
  auto& ps = I.me();
  ReplyTo r;
  r.pe = I.mype();
  // Skip ids still occupied: after a restore rolls next_future back, a
  // slot with a suspended waiter may sit above the counter.
  do {
    r.fid = ++ps.next_future;
  } while (ps.futures.count(r.fid) != 0);
  return r;
}

std::vector<std::byte> future_get_bytes(const ReplyTo& f) {
  auto& I = Runtime::current().impl();
  if (f.pe != I.mype()) {
    throw std::logic_error("Future::get() must run on the creating PE");
  }
  for (;;) {
    auto& slot = I.me().futures[f.fid];
    if (slot.value.has_value()) return *slot.value;
    Fiber* cur = Fiber::current();
    if (cur == nullptr) {
      throw std::logic_error(
          "Future::get() requires a threaded entry method");
    }
    slot.waiter = cur;
    Fiber::yield();
  }
}

std::optional<std::vector<std::byte>> future_get_bytes_for(const ReplyTo& f,
                                                           double timeout_s) {
  auto& I = Runtime::current().impl();
  if (f.pe != I.mype()) {
    throw std::logic_error("Future::get_for() must run on the creating PE");
  }
  {
    auto& slot = I.me().futures[f.fid];
    if (slot.value.has_value()) return *slot.value;
  }
  Fiber* cur = Fiber::current();
  if (cur == nullptr) {
    throw std::logic_error(
        "Future::get_for() requires a threaded entry method");
  }
  // Arm a deadline: an uncounted self-timer delivered via send_after.
  auto& ps = I.me();
  const std::uint64_t token = ++ps.next_timer_token;
  ps.timer_waiters[token] = cur;
  {
    LocalEnvelope env;
    env.kind = LocalEnvelope::Kind::Timer;
    env.timer_token = token;
    auto m = std::make_unique<Message>();
    m->handler = I.h_local;
    m->dst_pe = I.mype();
    m->local = std::make_shared<LocalEnvelope>(std::move(env));
    m->local_size = 0;
    I.machine->send_after(std::move(m), timeout_s);
  }
  for (;;) {
    {
      // Re-acquire the slot each pass: the map may rehash while we
      // are suspended (same discipline as future_get_bytes).
      auto& slot = I.me().futures[f.fid];
      if (slot.value.has_value()) {
        // Disarm: the timer event may still fire, but its token lookup
        // will miss and the delivery no-ops.
        I.me().timer_waiters.erase(token);
        return *slot.value;
      }
      slot.waiter = cur;
    }
    Fiber::yield();
    if (I.me().timer_waiters.count(token) == 0) {
      // The deadline fired (it erased its own token before resuming us).
      auto& slot = I.me().futures[f.fid];
      if (slot.value.has_value()) return *slot.value;  // lost race: value won
      // Timed out: a later fulfill must not resume a recycled fiber.
      slot.waiter = nullptr;
      return std::nullopt;
    }
  }
}

bool future_ready(const ReplyTo& f) {
  auto& I = Runtime::current().impl();
  if (f.pe != I.mype()) return false;
  const auto it = I.me().futures.find(f.fid);
  return it != I.me().futures.end() && it->second.value.has_value();
}

void future_send_bytes(const ReplyTo& f, std::vector<std::byte>&& bytes) {
  Runtime::current().impl().send_future_bytes(f, std::move(bytes));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// cx::ft public API (declared in ft/ft.hpp; lives here because the
// collectives must walk the scheduler's live per-PE state)

namespace ft {

std::uint64_t checkpoint() {
  auto& I = Runtime::current().impl();
  const std::uint64_t epoch = ++I.ftst.next_epoch;
  const ReplyTo reply = detail::make_future_slot();
  CkptHeader h;
  h.epoch = epoch;
  h.reply = reply;
  for (int pe = 0; pe < I.P; ++pe) {
    I.raw_send(I.make_msg(I.h_ckpt, pe, header_bytes(h)));
  }
  (void)detail::future_get_bytes(reply);  // blocks the driver fiber
  I.me().futures.erase(reply.fid);  // one-shot internal slot
  return epoch;
}

void restore() {
  auto& I = Runtime::current().impl();
  const std::uint64_t epoch = CheckpointStore::instance().latest_epoch();
  if (epoch == 0) {
    throw std::logic_error("cx::ft::restore(): no checkpoint to restore");
  }
  // Bring dead PEs back first so the restore collective reaches them.
  const std::vector<int> dead(I.ftst.failed.begin(), I.ftst.failed.end());
  for (const int pe : dead) I.machine->revive_pe(pe);
  I.ftst.failed.clear();
  const ReplyTo reply = detail::make_future_slot();
  RestoreHeader h;
  h.epoch = epoch;
  h.reply = reply;
  for (int pe = 0; pe < I.P; ++pe) {
    I.raw_send(I.make_msg(I.h_restore, pe, header_bytes(h)));
  }
  (void)detail::future_get_bytes(reply);
  // Release the ack slot: with next_future rolled back to the checkpoint
  // value, the id must be reusable or post-restore allocations would
  // diverge from a never-diverged run's.
  I.me().futures.erase(reply.fid);
}

std::uint64_t checkpoint_digest() {
  return CheckpointStore::instance().digest();
}

void set_checkpoint_dir(const std::string& dir) {
  CheckpointStore::instance().set_disk_dir(dir);
}

void on_failure(std::function<void(const PeFailure&)> cb) {
  Runtime::current().impl().ftst.callbacks.push_back(std::move(cb));
}

std::vector<int> failed_pes() {
  const auto& failed = Runtime::current().impl().ftst.failed;
  return {failed.begin(), failed.end()};
}

}  // namespace ft

}  // namespace cx
