// Runtime glue: Impl construction, handler registration, the public
// Runtime API, and Chare services. The scheduler logic lives in the
// sibling TUs (delivery.cpp, location.cpp, collectives.cpp,
// coordinator.cpp, ft_handlers.cpp); see runtime_impl.hpp for the map.

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/runtime_impl.hpp"
#include "machine/sim_machine.hpp"

namespace cx {

Runtime* g_runtime = nullptr;

Runtime::Impl::Impl(RuntimeConfig c) : cfg(std::move(c)) {
  machine = cxm::make_machine(cfg.machine);
  P = machine->num_pes();
  // Collection ids are allocated by whichever PE drives create_*; under
  // the socket backend each rank draws from its own partition so two
  // ranks can never mint the same id (2^24 collections per rank).
  next_coll.store(static_cast<CollectionId>(machine->my_rank()) << 24,
                  std::memory_order_relaxed);
  cx::trace::begin_run(P, machine->is_simulated());
  pes.reserve(static_cast<std::size_t>(P));
  for (int i = 0; i < P; ++i) pes.push_back(std::make_unique<PeState>());
  register_handlers();
  cx::ft::CheckpointStore::instance().reset(P);
  live_cfg = cx::ft::liveness_from_faults(cfg.machine.faults);
  live.resize(static_cast<std::size_t>(P));
  machine->set_failure_listener([this](const cx::ft::PeFailure& f) {
    // Route every detection (scripted crash, inject_kill, heartbeat
    // declaration, retransmit give-up) to the coordinator — the lowest
    // live PE, so recovery survives losing PE 0 — as an uncounted
    // control message.
    int coord = 0;
    while (coord < P - 1 && (machine->pe_failed(coord) || coord == f.pe)) {
      ++coord;
    }
    FtFailureHeader h;
    h.failure = f;
    raw_send(wire::make_msg(h_ft_failure, coord, h));
  });
}

void Runtime::Impl::register_handlers() {
  auto reg = [&](void (Impl::*fn)(MessagePtr)) {
    return machine->register_handler(
        [this, fn](MessagePtr m) { (this->*fn)(std::move(m)); });
  };
  h_local = reg(&Impl::on_local);
  h_entry = reg(&Impl::on_entry);
  h_create = reg(&Impl::on_create);
  h_bcast = reg(&Impl::on_bcast);
  h_bcast_done = reg(&Impl::on_bcast_done);
  h_reduce = reg(&Impl::on_reduce);
  h_future = reg(&Impl::on_future);
  h_migrate = reg(&Impl::on_migrate);
  h_loc = reg(&Impl::on_loc);
  h_insert = reg(&Impl::on_insert);
  h_done_inserting = reg(&Impl::on_done_inserting);
  h_insert_count = reg(&Impl::on_insert_count);
  h_set_size = reg(&Impl::on_set_size);
  h_size_ack = reg(&Impl::on_size_ack);
  h_lb_sync = reg(&Impl::on_lb_sync);
  h_lb_cmd = reg(&Impl::on_lb_cmd);
  h_lb_ack = reg(&Impl::on_lb_ack);
  h_lb_resume = reg(&Impl::on_lb_resume);
  h_qd_start = reg(&Impl::on_qd_start);
  h_qd_probe = reg(&Impl::on_qd_probe);
  h_qd_reply = reg(&Impl::on_qd_reply);
  // ft handlers stay at the end: earlier ids are wire-stable across the
  // pre-ft message-count baselines.
  h_ft_failure = reg(&Impl::on_ft_failure);
  h_ckpt = reg(&Impl::on_ckpt);
  h_ckpt_ack = reg(&Impl::on_ckpt_ack);
  h_restore = reg(&Impl::on_restore);
  h_restore_ack = reg(&Impl::on_restore_ack);
  h_heartbeat = reg(&Impl::on_heartbeat);
  h_hb_tick = reg(&Impl::on_hb_tick);
  h_ft_notice = reg(&Impl::on_ft_notice);
  h_ft_round_done = reg(&Impl::on_ft_round_done);
  // Section handlers (PR 9) append after the ft block for the same
  // wire-stability reason.
  h_sect_build = reg(&Impl::on_sect_build);
  h_sect_bcast = reg(&Impl::on_sect_bcast);
  h_sect_reduce = reg(&Impl::on_sect_reduce);
  h_sect_expect = reg(&Impl::on_sect_expect);
}

// ---------------------------------------------------------------------------
// Runtime public API

Runtime::Runtime(RuntimeConfig cfg) : impl_(new Impl(std::move(cfg))) {
  if (g_runtime != nullptr) {
    throw std::logic_error("only one cx::Runtime may exist at a time");
  }
  g_runtime = this;
}

Runtime::~Runtime() { g_runtime = nullptr; }

void Runtime::run(std::function<void()> entry) {
  // The entry function runs on PE 0; under the socket backend only the
  // rank hosting PE 0 seeds it (the Start envelope is a by-reference
  // local payload and must not cross a process boundary). Other ranks
  // just run their schedulers until the Stop broadcast arrives.
  if (impl_->machine->hosts_pe(0)) {
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Start;
    env->fn = std::move(entry);
    impl_->send_local(0, env);
  }
  if (impl_->live_cfg.enabled()) {
    // Seed one heartbeat tick chain per locally hosted PE. With
    // --ft-heartbeat-ms=0 (the default) this block is never entered:
    // zero liveness traffic, zero overhead.
    for (int pe = 0; pe < impl_->P; ++pe) {
      if (!impl_->machine->hosts_pe(pe)) continue;
      auto m = std::make_unique<Message>();
      m->handler = impl_->h_hb_tick;
      m->dst_pe = pe;
      m->ft_seq = 0;  // generation 0 matches the fresh PeLiveness
      m->ft_flags = cxm::kFtBestEffort;
      m->wire_flags = cxm::kWireNoAgg;
      impl_->machine->send(std::move(m));
    }
  }
  impl_->machine->run();
}

void Runtime::exit() {
  impl_->exiting.store(true);
  impl_->machine->stop();
}

int Runtime::num_pes() const noexcept { return impl_->P; }
int Runtime::my_pe() const noexcept { return impl_->machine->current_pe(); }
int Runtime::my_rank() const noexcept { return impl_->machine->my_rank(); }
int Runtime::num_ranks() const noexcept {
  return impl_->machine->num_ranks();
}
double Runtime::now() const { return impl_->machine->now(); }
void Runtime::compute(double seconds) { impl_->machine->compute(seconds); }
void Runtime::charge(double seconds) { impl_->machine->charge(seconds); }
bool Runtime::is_simulated() const noexcept {
  return impl_->machine->is_simulated();
}

double Runtime::sim_makespan() const {
  auto* sm = dynamic_cast<cxm::SimMachine*>(impl_->machine.get());
  return sm != nullptr ? sm->makespan() : 0.0;
}

cxm::Machine& Runtime::machine() noexcept { return *impl_->machine; }

void Runtime::start_quiescence(const Callback& target) {
  QdStartHeader h;
  h.cb = target;
  impl_->raw_send(wire::make_msg(impl_->h_qd_start, 0, h));
}

Runtime::LbStats Runtime::lb_stats() const { return impl_->lb_stats; }

std::uint64_t Runtime::messages_sent() const {
  std::uint64_t total = 0;
  for (const auto& ps : impl_->pes) total += ps->created;
  return total;
}

Runtime& Runtime::current() {
  if (g_runtime == nullptr) {
    throw std::logic_error("no cx::Runtime is active");
  }
  return *g_runtime;
}

bool Runtime::has_current() noexcept { return g_runtime != nullptr; }

// ---------------------------------------------------------------------------
// Chare services

Chare::Chare() : coll_(staged_coll()), idx_(staged_idx()) {}

void Chare::wait(std::function<bool()> cond) {
  if (cond()) return;
  Fiber* f = Fiber::current();
  if (f == nullptr) {
    throw std::logic_error(
        "wait() requires a threaded entry method (set_threaded<M>())");
  }
  for (;;) {
    waits_.push_back({cond, f, false});
    Fiber::yield();
    for (auto it = waits_.begin(); it != waits_.end(); ++it) {
      if (it->fiber == f) {
        waits_.erase(it);
        break;
      }
    }
    if (cond()) return;
  }
}

void Chare::migrate(int to_pe) {
  migrate_pending_ = true;
  migrate_for_lb_ = false;
  migrate_to_ = to_pe;
}

void Chare::at_sync() { sync_pending_ = true; }

void Chare::contribute(const Callback& target) {
  detail::contribute_bytes(*this, {}, kNoCombine, target);
}

// ---------------------------------------------------------------------------
// detail:: fast-path switch used by the header-only templates

namespace detail {

namespace {
// The paper's same-process by-reference optimization (SecII-D) can be
// disabled for ablation studies (bench/micro_messaging) — also via the
// CHARMX_NO_LOCAL_FASTPATH environment variable.
std::atomic<bool> g_local_fastpath{
    std::getenv("CHARMX_NO_LOCAL_FASTPATH") == nullptr};
}  // namespace

bool local_fastpath_enabled() noexcept {
  return g_local_fastpath.load(std::memory_order_relaxed);
}

void set_local_fastpath(bool on) noexcept {
  g_local_fastpath.store(on, std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace cx
