// Fault-tolerance handlers (failure notification, liveness heartbeats,
// checkpoint/restore collectives, the auto-recovery coordinator) and
// the cx::ft public API. The collectives must walk the scheduler's live
// per-PE state, so they live in core/, not ft/. All ft traffic is
// uncounted control traffic: no processed++.
//
// Shared coordinator state (Impl::ftst) can be touched from different
// PE threads across a coordinator failover, so the failed set, the
// recovery state machine, callbacks and restore-ack counts take
// ftst.mu; callbacks themselves always run outside the lock.

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/future.hpp"
#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace cx {

namespace {

/// Bound for collective waits during recovery: generous multiples of
/// the settle delay, floored per backend.
double recover_wait_bound(bool simulated, double settle_s) noexcept {
  return std::max(4.0 * settle_s, simulated ? 1.0e-3 : 0.25);
}

constexpr std::uint64_t ns(double seconds) noexcept {
  return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
}

}  // namespace

void Runtime::Impl::on_ft_failure(MessagePtr msg) {
  FtFailureHeader h = pup::from_bytes<FtFailureHeader>(msg->data);
  const int pe = h.failure.pe;
  if (pe < 0 || pe >= P) return;
  std::vector<std::function<void(const cx::ft::PeFailure&)>> cbs;
  {
    std::lock_guard<std::mutex> lk(ftst.mu);
    if (!ftst.failed.insert(pe).second) return;  // already known
    cbs = ftst.callbacks;  // run outside the lock (a cb may re-enter)
  }
  CX_LOG_WARN("cx::ft: PE ", pe, " failed (",
              cx::ft::failure_kind_name(h.failure.kind),
              ") at t=", h.failure.time);
  // Its local checkpoint memory died with it; the buddy copy remains.
  cx::ft::CheckpointStore::instance().drop_primary(pe);
  for (auto& cb : cbs) cb(h.failure);
  if (!cfg.machine.faults.auto_recover || exiting.load()) return;
  // Auto-recovery: start (or adopt) a round on this PE's scheduler.
  std::uint64_t round = 0;
  {
    std::lock_guard<std::mutex> lk(ftst.mu);
    if (ftst.rec.phase == cx::ft::RecoveryPhase::Idle) {
      round = ftst.rec.begin(mype(), machine->now());
    } else if (ftst.rec.owner != mype() &&
               (ftst.rec.owner < 0 || machine->pe_failed(ftst.rec.owner) ||
                ftst.rec.owner == pe)) {
      // The coordinator driving the current round is itself a casualty:
      // take over with a fresh round. Its driver fiber — possibly
      // revived later by restore — sees the stale round stamp and exits.
      round = ftst.rec.begin(mype(), machine->now());
    } else {
      // A round is in flight on a live coordinator: mark it dirty so it
      // loops (re-notify, re-settle, re-restore) before finishing.
      ftst.rec.dirty = true;
      return;
    }
  }
  run_fiber([this, round] { auto_recover_driver(round); }, nullptr);
}

void Runtime::Impl::auto_recover_driver(std::uint64_t round) {
  const bool sim = machine->is_simulated();
  const auto& fcfg = cfg.machine.faults;
  const double settle = cx::ft::effective_settle(fcfg.settle_s, sim);
  const double bound = recover_wait_bound(sim, settle);
  double t0 = 0.0;
  {
    std::lock_guard<std::mutex> lk(ftst.mu);
    if (ftst.rec.round != round) return;  // superseded before we ran
    t0 = ftst.rec.t0;
  }
  for (int attempt = 0;; ++attempt) {
    if (exiting.load()) return;
    // Phase 1: broadcast the failure notice to every live PE so their
    // detectors reset and the casualty's in-flight traffic is distrusted.
    FtNoticeHeader n;
    n.round = round;
    n.coordinator = mype();
    {
      std::lock_guard<std::mutex> lk(ftst.mu);
      if (ftst.rec.round != round) return;
      ftst.rec.phase = cx::ft::RecoveryPhase::Notifying;
      ftst.rec.dirty = false;
      n.failed_pe = ftst.failed.empty() ? -1 : *ftst.failed.begin();
    }
    for (int pe = 0; pe < P; ++pe) {
      if (pe == mype() || machine->pe_failed(pe)) continue;
      raw_send(wire::make_msg(h_ft_notice, pe, n));
    }
    if (live_cfg.enabled()) {
      live[static_cast<std::size_t>(mype())].pred.reset(machine->now());
    }
    // Phase 2: settle — let pre-failure in-flight traffic drain or die
    // before rolling state back under it.
    {
      std::lock_guard<std::mutex> lk(ftst.mu);
      if (ftst.rec.round != round) return;
      ftst.rec.phase = cx::ft::RecoveryPhase::Settling;
    }
    ft_sleep(settle);
    // Phase 3: collective restore from the newest complete checkpoint.
    {
      std::lock_guard<std::mutex> lk(ftst.mu);
      if (ftst.rec.round != round) return;
      ftst.rec.phase = cx::ft::RecoveryPhase::Restoring;
    }
    const cx::ft::RestoreStatus st = ft::restore(bound);
    if (st == cx::ft::RestoreStatus::NoCheckpoint) {
      // Satellite contract: no checkpoint -> clean abort with a
      // diagnostic, never a hang or an uncaught throw.
      CX_LOG_ERROR(
          "cx::ft: auto-recover found no complete checkpoint to roll "
          "back to; aborting the run (call cx::ft::checkpoint() at "
          "least once before the first failure)");
      {
        std::lock_guard<std::mutex> lk(ftst.mu);
        if (ftst.rec.round == round) ftst.rec.finish();
      }
      exiting.store(true);
      machine->stop();
      return;
    }
    bool done = false;
    {
      std::lock_guard<std::mutex> lk(ftst.mu);
      if (ftst.rec.round != round) return;
      done = st == cx::ft::RestoreStatus::Ok && !ftst.rec.dirty &&
             ftst.failed.empty();
      if (done) ftst.rec.finish();
    }
    if (done) break;
    if (attempt + 1 >= fcfg.retry.max_attempts) {
      CX_LOG_ERROR("cx::ft: auto-recovery did not converge after ",
                   attempt + 1, " rounds; aborting the run");
      {
        std::lock_guard<std::mutex> lk(ftst.mu);
        if (ftst.rec.round == round) ftst.rec.finish();
      }
      exiting.store(true);
      machine->stop();
      return;
    }
  }
  const double now = machine->now();
  const double mttr = now - t0;
  CX_TRACE_EVENT(mype(), now, cx::trace::EventKind::FtRecover, round,
                 ns(mttr));
  ftst.completed_rounds.fetch_add(1, std::memory_order_relaxed);
  CX_LOG_WARN("cx::ft: auto-recovery round ", round, " complete (MTTR ",
              mttr, "s)");
  // Tell every PE the round is over so suspended timed waits re-check
  // state promptly (the counter increment above happens-before these
  // sends, so a woken driver reads the new round count).
  {
    FtNoticeHeader d;
    d.round = round;
    d.coordinator = mype();
    for (int pe = 0; pe < P; ++pe) {
      raw_send(wire::make_msg(h_ft_round_done, pe, d));
    }
  }
  std::vector<std::function<void(std::uint64_t)>> cbs;
  {
    std::lock_guard<std::mutex> lk(ftst.mu);
    cbs = ftst.recovery_callbacks;
  }
  for (auto& cb : cbs) cb(round);
}

void Runtime::Impl::wake_armed_timers() {
  // Each armed token is re-fired as a fresh Timer envelope — uncounted
  // (digest-safe) and idempotent (the original deadline's delivery
  // finds the token gone and no-ops).
  auto& ps = me();
  for (const auto& [token, fib] : ps.timer_waiters) {
    (void)fib;
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Timer;
    env->timer_token = token;
    machine->send_after(wrap_local(env, mype()), 0.0);
  }
}

void Runtime::Impl::on_ft_round_done(MessagePtr msg) {
  (void)pup::from_bytes<FtNoticeHeader>(msg->data);
  // A recovery round just finished somewhere: fibers suspended in timed
  // waits (phase drivers mid get_for slice) should re-check
  // cx::ft::recoveries() now rather than at their next deadline — a
  // slice can be seconds of virtual time, and every idle second is
  // heartbeat traffic the DES has to churn through.
  wake_armed_timers();
  if (live_cfg.enabled()) {
    // The round just revived its casualties, but a revived predecessor
    // needs a beat in flight before it stops looking silent. Restart
    // the grace period so the monitor does not re-declare it (and
    // trigger a whole spurious second round) in that window.
    live[static_cast<std::size_t>(mype())].pred.reset(machine->now());
  }
}

void Runtime::Impl::ft_sleep(double seconds) {
  // A pure timer wait on the timer-token mechanism — deliberately NOT a
  // future: future ids (PeState.next_future) are pupped into checkpoint
  // blobs, so an id burned here by the recovery machinery would make a
  // recovered run's digest diverge from a fault-free one. Timer tokens
  // are runtime-local and never checkpointed. Loops against an absolute
  // deadline because a recovery wake-all may resume the fiber early.
  Fiber* cur = Fiber::current();
  const double t_end = machine->now() + seconds;
  for (;;) {
    const double left = t_end - machine->now();
    if (left <= 0.0) return;
    auto& ps = me();
    const std::uint64_t token = ++ps.next_timer_token;
    ps.timer_waiters[token] = cur;
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Timer;
    env->timer_token = token;
    machine->send_after(wrap_local(env, mype()), left);
    while (me().timer_waiters.count(token) != 0) Fiber::yield();
  }
}

// ---------------------------------------------------------------------------
// Liveness: heartbeat tick chains and the accrual detector

void Runtime::Impl::arm_hb_tick(int pe) {
  auto m = std::make_unique<Message>();
  m->handler = h_hb_tick;
  m->dst_pe = pe;
  m->ft_seq = live[static_cast<std::size_t>(pe)].tick_gen;
  m->ft_flags = cxm::kFtBestEffort;
  m->wire_flags = cxm::kWireNoAgg;
  machine->send_after(std::move(m), live_cfg.interval_s);
}

void Runtime::Impl::on_hb_tick(MessagePtr msg) {
  if (!live_cfg.enabled() || P < 2) return;
  const int pe = mype();
  auto& L = live[static_cast<std::size_t>(pe)];
  if (msg->ft_seq != L.tick_gen) return;  // stale chain from before a revive
  if (exiting.load()) return;             // let the chain die: DES must drain
  const double now = machine->now();
  const int pred = cx::ft::hb_predecessor(pe, P);
  const int succ = cx::ft::hb_successor(pe, P);
  if (L.pred.last_seen < 0.0) {
    // First tick of this chain: grace-arm the detector so a peer that
    // has not beaten *yet* is not instantly suspected.
    L.pred.reset(now);
  }
  // Beat our successor (best-effort: lost beats are superseded).
  HeartbeatHeader hh;
  hh.src = pe;
  hh.seq = ++L.hb_seq;
  auto beat = wire::make_msg(h_heartbeat, succ, hh);
  beat->ft_flags = cxm::kFtBestEffort;
  raw_send(std::move(beat));
  // Check our predecessor's silence. Gate on what the *runtime* knows,
  // not machine->pe_failed(): a silently-hung PE already shows as
  // failed to the DES injector the moment the script fires, and that
  // must not suppress the very declaration that tells the recovery
  // pipeline about it. fail_pe dedupes, so re-declaring while the
  // notice is in flight is a no-op.
  bool known;
  {
    std::lock_guard<std::mutex> lk(ftst.mu);
    known = ftst.failed.count(pred) != 0;
  }
  if (known) {
    // Recovery owns the casualty. Hold the detector in its grace
    // period rather than letting suspicion accrue against a PE that is
    // about to be revived: the revive clears the failed set a restore
    // round-trip before the first new beat can arrive, and a stale
    // detector firing in that window would dirty the round and buy a
    // whole spurious second rollback.
    L.pred.reset(now);
  } else if (L.pred.suspect(now, live_cfg)) {
    const double silence = now - L.pred.last_seen;
    CX_TRACE_EVENT(pe, now, cx::trace::EventKind::FtDetect,
                   static_cast<std::uint64_t>(pred), ns(silence));
    CX_LOG_WARN("cx::ft: PE ", pe, " heartbeat detector declares PE ", pred,
                " hung (silent for ", silence, "s)");
    machine->declare_failed(pred, cx::ft::FailureKind::Hung);
  }
  arm_hb_tick(pe);
}

void Runtime::Impl::on_heartbeat(MessagePtr msg) {
  if (!live_cfg.enabled()) return;
  const HeartbeatHeader h = pup::from_bytes<HeartbeatHeader>(msg->data);
  const int pe = mype();
  if (h.src != cx::ft::hb_predecessor(pe, P)) return;  // not our link
  live[static_cast<std::size_t>(pe)].pred.heartbeat(machine->now());
}

void Runtime::Impl::on_ft_notice(MessagePtr msg) {
  const FtNoticeHeader h = pup::from_bytes<FtNoticeHeader>(msg->data);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::FtNotice,
                 static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(h.failed_pe)),
                 h.round);
  if (live_cfg.enabled()) {
    // Recovery is handling the casualty: restart the grace period so
    // the monitor of the dead PE does not re-declare it every tick.
    live[static_cast<std::size_t>(mype())].pred.reset(machine->now());
  }
}

// ---------------------------------------------------------------------------
// Checkpoint / restore collectives

void Runtime::Impl::on_ckpt(MessagePtr msg) {
  CkptHeader h = pup::from_bytes<CkptHeader>(msg->data);
  auto& ps = me();
  PeBlob blob;
  blob.created = ps.created;
  blob.processed = ps.processed;
  blob.next_future = ps.next_future;
  std::vector<CollectionId> cids;
  cids.reserve(ps.colls.size());
  for (auto& [cid, cm] : ps.colls) cids.push_back(cid);
  std::sort(cids.begin(), cids.end());
  for (const CollectionId cid : cids) {
    CollMeta& cm = ps.colls.at(cid);
    CollBlob cb;
    cb.info = cm.info;
    std::vector<Index> order;
    order.reserve(cm.elements.size());
    for (auto& [idx, obj] : cm.elements) order.push_back(idx);
    std::sort(order.begin(), order.end());
    for (const Index& idx : order) {
      Chare* obj = cm.elements.at(idx).get();
      ElementBlob eb;
      eb.idx = idx;
      eb.red_no = obj->red_no_;
      eb.sect_seq = obj->sect_seq_;
      pup::Sizer sz;
      obj->pup(sz);
      eb.state.resize(sz.size());
      pup::Packer pk(eb.state.data(), eb.state.size());
      obj->pup(pk);
      cb.elements.push_back(std::move(eb));
    }
    order.clear();
    for (auto& [idx, pe] : cm.overrides) order.push_back(idx);
    std::sort(order.begin(), order.end());
    for (const Index& idx : order) {
      cb.overrides.push_back({idx, cm.overrides.at(idx)});
    }
    blob.colls.push_back(std::move(cb));
  }
  for (auto& [key, rs] : ps.red_root) {
    RedBlob rb;
    rb.coll = key.first;
    rb.red_no = key.second;
    rb.count = rs.count;
    rb.has_acc = rs.has_acc;
    rb.acc = rs.acc;
    rb.combiner = rs.combiner;
    rb.cb = rs.cb;
    blob.reductions.push_back(std::move(rb));
  }
  // Sections and in-flight section reductions (both std::maps: ordered,
  // so the blob packs deterministically). The present/away delivery
  // split is a cache and is not captured — restore rebuilds it lazily.
  for (auto& [sid, sm] : ps.sections) {
    (void)sid;
    SectBlob sb;
    sb.spec = sm.spec;
    sb.epoch = sm.epoch;
    blob.sections.push_back(std::move(sb));
  }
  for (auto& [key, rs] : ps.sect_red) {
    SectRedBlob sb;
    sb.sect = key.first;
    sb.seq = key.second;
    sb.count = rs.count;
    sb.has_acc = rs.has_acc;
    sb.acc = rs.acc;
    sb.combiner = rs.combiner;
    sb.cb = rs.cb;
    blob.sect_reductions.push_back(std::move(sb));
  }
  blob.next_sect = ps.next_sect;
  auto bytes = pup::to_bytes(blob);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::FtCheckpoint,
                 h.epoch, bytes.size());
  cx::ft::CheckpointStore::instance().store(mype(), h.epoch,
                                            std::move(bytes));
  CkptAckHeader a;
  a.epoch = h.epoch;
  a.reply = h.reply;
  raw_send(wire::make_msg(h_ckpt_ack, h.reply.pe, a));
}

void Runtime::Impl::on_ckpt_ack(MessagePtr msg) {
  CkptAckHeader h = pup::from_bytes<CkptAckHeader>(msg->data);
  if (++ftst.ckpt_acks[h.epoch] < P) return;
  ftst.ckpt_acks.erase(h.epoch);
  // Uncounted timer-token wake, not a future fulfillment: checkpoint
  // machinery must leave no footprint in the quiescence counters it is
  // itself snapshotting (see the restore ack path for the full story).
  std::lock_guard<std::mutex> lk(ftst.mu);
  if (ftst.ckpt_wait_epoch != h.epoch) return;  // abandoned epoch
  ftst.ckpt_done = true;
  if (ftst.ckpt_waiter != nullptr) {
    auto& ps = me();
    const std::uint64_t token = ++ps.next_timer_token;
    ps.timer_waiters[token] = ftst.ckpt_waiter;
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Timer;
    env->timer_token = token;
    machine->send_after(wrap_local(env, mype()), 0.0);
  }
}

void Runtime::Impl::on_restore(MessagePtr msg) {
  RestoreHeader h = pup::from_bytes<RestoreHeader>(msg->data);
  auto& ps = me();
  // Discard post-checkpoint scheduler state. Futures and live fibers
  // survive: the restore driver itself is suspended on one.
  ps.colls.clear();
  ps.stash.clear();
  ps.red_root.clear();
  ps.bcast_done_root.clear();
  // Like bcast_done_root: completion expectations describe post-
  // checkpoint multicasts, and a replayed broadcast re-registers its
  // own (same reply fid — next_future rolls back below).
  ps.bcast_expect.clear();
  ps.sections.clear();
  ps.sect_red.clear();
  ps.sect_stash.clear();
  ps.ins_count.clear();
  ps.size_acks.clear();
  if (mype() == 0) {
    lb.clear();
    qd = QdState{};
  }
  const auto bytes = cx::ft::CheckpointStore::instance().latest(mype());
  if (!bytes.empty()) {
    PeBlob blob = pup::from_bytes<PeBlob>(bytes);
    for (auto& cb : blob.colls) {
      CollMeta& cm = ps.colls[cb.info.id];
      cm.info = cb.info;
      const auto& fac = Registry::instance().factory(cb.info.ctor);
      if (fac.construct_default == nullptr) {
        CX_LOG_ERROR("chare type of collection ", cb.info.id,
                     " is not default-constructible; cannot restore");
        throw std::logic_error(
            "restore requires default-constructible chares");
      }
      for (auto& eb : cb.elements) {
        staged_coll() = cb.info.id;
        staged_idx() = eb.idx;
        Chare* obj = fac.construct_default();
        staged_coll() = kInvalidCollection;
        pup::Unpacker u(eb.state.data(), eb.state.size());
        obj->pup(u);
        obj->red_no_ = eb.red_no;
        obj->sect_seq_ = eb.sect_seq;
        obj->load_ = 0.0;
        cm.elements[eb.idx].reset(obj);
        obj->on_migrated();
      }
      for (auto& ob : cb.overrides) cm.overrides[ob.idx] = ob.pe;
    }
    for (auto& rb : blob.reductions) {
      RedState rs;
      rs.count = rb.count;
      rs.has_acc = rb.has_acc;
      rs.acc = rb.acc;
      rs.combiner = rb.combiner;
      rs.cb = rb.cb;
      ps.red_root[{rb.coll, rb.red_no}] = std::move(rs);
    }
    // Sections: re-derive home membership from the restored collection
    // info; the present/away split rebuilds lazily on the next
    // multicast (exactly like a post-migration repair).
    for (auto& sb : blob.sections) {
      SectMeta sm;
      sm.spec = sb.spec;
      sm.epoch = sb.epoch;
      const auto cit = ps.colls.find(sb.spec.coll);
      if (cit != ps.colls.end()) {
        for (const Index& m : sm.spec.members) {
          if (home_pe(cit->second.info, m, P) == mype()) {
            sm.home_members.push_back(m);
          }
        }
      }
      ps.sections[sm.spec.id] = std::move(sm);
    }
    for (auto& sb : blob.sect_reductions) {
      RedState rs;
      rs.count = sb.count;
      rs.has_acc = sb.has_acc;
      rs.acc = sb.acc;
      rs.combiner = sb.combiner;
      rs.cb = sb.cb;
      ps.sect_red[{sb.sect, sb.seq}] = std::move(rs);
    }
    ps.next_sect = blob.next_sect;
    // Roll the quiescence counters back too, so created/processed match
    // a run that never diverged from this checkpoint.
    ps.created = blob.created;
    ps.processed = blob.processed;
    // Same for the future-id counter: element state PUPs callbacks,
    // which embed future ids, so a restored run must re-issue the ids a
    // never-diverged run would (the digest tests compare them). Stale
    // post-checkpoint slots are dropped; a slot with a suspended waiter
    // (the restore ack the driver itself blocks on) survives, and
    // make_future_slot skips over any survivor when reallocating.
    for (auto it = ps.futures.begin(); it != ps.futures.end();) {
      if (it->first > blob.next_future && it->second.waiter == nullptr) {
        it = ps.futures.erase(it);
      } else {
        ++it;
      }
    }
    ps.next_future = blob.next_future;
  }
  // Wake every armed Future::get_for deadline early: a phase driver
  // suspended on a long timeout must observe the rollback now, not
  // minutes from now. Drivers whose wait is still valid just loop and
  // re-arm.
  wake_armed_timers();
  // Restart this PE's heartbeat chain under a fresh generation: a
  // revived PE's old chain died with it, and live PEs' old chains are
  // retired by the generation check — exactly one chain per PE after
  // every restore, on both backends.
  if (live_cfg.enabled()) {
    auto& L = live[static_cast<std::size_t>(mype())];
    ++L.tick_gen;
    L.pred.reset(machine->now());
    arm_hb_tick(mype());
  }
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::FtRestore,
                 h.epoch, bytes.size());
  RestoreAckHeader a;
  a.reply = h.reply;
  raw_send(wire::make_msg(h_restore_ack, h.reply.pe, a));
}

void Runtime::Impl::on_restore_ack(MessagePtr msg) {
  RestoreAckHeader h = pup::from_bytes<RestoreAckHeader>(msg->data);
  bool complete = false;
  {
    std::lock_guard<std::mutex> lk(ftst.mu);
    const auto it = ftst.restore_acks.find({h.reply.pe, h.reply.fid});
    if (it == ftst.restore_acks.end()) return;  // abandoned round: ignore
    if (++it->second >= P) {
      ftst.restore_acks.erase(it);
      complete = true;
    }
  }
  if (!complete) return;
  // Wake the restore driver through an uncounted timer token, never a
  // future: this fires after the rollback reset the quiescence
  // counters, so a counted resume here would permanently skew them
  // against a fault-free run. Spurious (the driver may already be past
  // its flag check) but loop-guarded waits tolerate that.
  std::lock_guard<std::mutex> lk(ftst.mu);
  ftst.restore_done = true;
  if (ftst.restore_waiter != nullptr) {
    auto& ps = me();
    const std::uint64_t token = ++ps.next_timer_token;
    ps.timer_waiters[token] = ftst.restore_waiter;
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Timer;
    env->timer_token = token;
    machine->send_after(wrap_local(env, mype()), 0.0);
  }
}

// ---------------------------------------------------------------------------
// cx::ft public API (declared in ft/ft.hpp; lives here because the
// collectives must walk the scheduler's live per-PE state)

namespace ft {

std::uint64_t checkpoint() {
  auto& I = Runtime::current().impl();
  const auto& fcfg = I.cfg.machine.faults;
  const bool sim = I.machine->is_simulated();
  const double settle = effective_settle(fcfg.settle_s, sim);
  double bound = recover_wait_bound(sim, settle);
  if (I.live_cfg.enabled()) {
    // A silent hang mid-checkpoint is only noticed by the heartbeat
    // layer: wait at least that long before declaring the epoch dead.
    bound = std::max(bound, 2.0 * I.live_cfg.detection_bound());
  }
  const std::uint64_t rounds0 =
      I.ftst.completed_rounds.load(std::memory_order_relaxed);
  Fiber* cur = Fiber::current();
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t epoch = ++I.ftst.next_epoch;
    {
      // The ack wait rides a flag plus the timer-token mechanism, NOT a
      // future: future ids and the quiescence counters are part of the
      // very blobs this collective stores, so the machinery must not
      // touch them (a fault-free and a recovered run would otherwise
      // disagree on the ledger — the chaos digests compare it).
      std::lock_guard<std::mutex> lk(I.ftst.mu);
      I.ftst.ckpt_wait_epoch = epoch;
      I.ftst.ckpt_done = false;
      I.ftst.ckpt_waiter = cur;
    }
    CkptHeader h;
    h.epoch = epoch;
    h.reply.pe = I.mype();  // ack destination; not a future
    h.reply.fid = 0;
    for (int pe = 0; pe < I.P; ++pe) {
      I.raw_send(wire::make_msg(I.h_ckpt, pe, h));
    }
    if (!fcfg.auto_recover) {
      for (;;) {  // blocks the driver fiber until the completion wake
        {
          std::lock_guard<std::mutex> lk(I.ftst.mu);
          if (I.ftst.ckpt_done) break;
        }
        Fiber::yield();
      }
      std::lock_guard<std::mutex> lk(I.ftst.mu);
      I.ftst.ckpt_waiter = nullptr;
      I.ftst.ckpt_wait_epoch = 0;
      return epoch;
    }
    // Under auto-recover a PE crashing mid-checkpoint means its ack
    // never comes: bound the wait, discard the partial epoch (the
    // store only serves *complete* epochs, so it was never visible),
    // wait out the recovery, and retake under a fresh epoch.
    bool ok = true;
    const double t_end = I.machine->now() + bound;
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(I.ftst.mu);
        if (I.ftst.ckpt_done) break;
      }
      const double left = t_end - I.machine->now();
      if (left <= 0.0) {
        ok = false;
        break;
      }
      {
        auto& ps = I.me();
        const std::uint64_t token = ++ps.next_timer_token;
        ps.timer_waiters[token] = cur;
        LocalEnvelope* env = acquire_envelope();
        env->kind = LocalEnvelope::Kind::Timer;
        env->timer_token = token;
        I.machine->send_after(I.wrap_local(env, I.mype()), left);
        Fiber::yield();
        I.me().timer_waiters.erase(token);  // disarm on early wake
      }
      // Woken early (completion, a recovery wake-all, or a round-done
      // notice): if a rollback is in flight this epoch is already
      // dead — stop waiting for it.
      std::lock_guard<std::mutex> lk(I.ftst.mu);
      if (I.ftst.ckpt_done) break;
      if (!I.ftst.failed.empty() ||
          I.ftst.rec.phase != RecoveryPhase::Idle) {
        ok = false;
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lk(I.ftst.mu);
      I.ftst.ckpt_waiter = nullptr;
      I.ftst.ckpt_wait_epoch = 0;
    }
    I.ftst.ckpt_acks.erase(epoch);  // late stale acks die on lookup
    if (ok) return epoch;
    if (attempt + 1 >= fcfg.retry.max_attempts) {
      throw std::runtime_error(
          "cx::ft::checkpoint(): could not complete a checkpoint under "
          "repeated failures");
    }
    // Wait for recovery to go idle (all PEs live) before retaking.
    for (;;) {
      bool idle;
      {
        std::lock_guard<std::mutex> lk(I.ftst.mu);
        idle = I.ftst.rec.phase == RecoveryPhase::Idle &&
               I.ftst.failed.empty();
      }
      if (idle || I.exiting.load()) break;
      I.ft_sleep(settle);
    }
    if (I.exiting.load()) return 0;
    // If a recovery round completed while we waited, every PE was just
    // reconstructed bit-for-bit from a complete stored epoch and no app
    // message has run since (the driver fiber held the PE): that epoch
    // IS a checkpoint of the current state. Return it instead of
    // retaking — a retake would store identical bytes under a fresh
    // epoch, burning a future id and a completion resume that a
    // fault-free run never spends (the chaos tier's digest-equality
    // assertions would see the skew).
    const std::uint64_t restored =
        I.ftst.last_restored.load(std::memory_order_relaxed);
    if (restored != 0 &&
        I.ftst.completed_rounds.load(std::memory_order_relaxed) != rounds0) {
      return restored;
    }
  }
}

RestoreStatus restore(double timeout_s) {
  auto& I = Runtime::current().impl();
  const std::uint64_t epoch = CheckpointStore::instance().latest_epoch();
  if (epoch == 0) return RestoreStatus::NoCheckpoint;
  // Bring dead PEs back first so the restore collective reaches them.
  {
    std::lock_guard<std::mutex> lk(I.ftst.mu);
    const std::vector<int> dead(I.ftst.failed.begin(), I.ftst.failed.end());
    for (const int pe : dead) I.machine->revive_pe(pe);
    I.ftst.failed.clear();
  }
  // The ack wait rides a flag plus the timer-token mechanism, NOT a
  // future: the restore handler rolls next_future back to the blob
  // value, so a future id burned by the machinery itself would make
  // post-rollback allocations diverge from a never-diverged run's.
  Fiber* cur = Fiber::current();
  ReplyTo reply;
  reply.pe = I.mype();
  {
    // Pre-register the ack count (the id part is a restore round tag,
    // not a future id): acks for any other (abandoned) round miss this
    // key and are ignored.
    std::lock_guard<std::mutex> lk(I.ftst.mu);
    reply.fid = ++I.ftst.restore_rounds;
    I.ftst.restore_acks[{reply.pe, reply.fid}] = 0;
    I.ftst.restore_done = false;
    I.ftst.restore_waiter = cur;
  }
  RestoreHeader h;
  h.epoch = epoch;
  h.reply = reply;
  for (int pe = 0; pe < I.P; ++pe) {
    I.raw_send(wire::make_msg(I.h_restore, pe, h));
  }
  bool ok = true;
  const double t_end =
      timeout_s > 0.0 ? I.machine->now() + timeout_s : 0.0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(I.ftst.mu);
      if (I.ftst.restore_done) break;
    }
    if (timeout_s <= 0.0) {
      Fiber::yield();  // resumed by the completion wake
      continue;
    }
    const double left = t_end - I.machine->now();
    if (left <= 0.0) {
      ok = false;
      break;
    }
    auto& ps = I.me();
    const std::uint64_t token = ++ps.next_timer_token;
    ps.timer_waiters[token] = cur;
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Timer;
    env->timer_token = token;
    I.machine->send_after(I.wrap_local(env, I.mype()), left);
    Fiber::yield();
    // Disarm if the completion wake (or a wake-all) beat the deadline.
    I.me().timer_waiters.erase(token);
  }
  {
    std::lock_guard<std::mutex> lk(I.ftst.mu);
    I.ftst.restore_waiter = nullptr;
    I.ftst.restore_acks.erase({reply.pe, reply.fid});  // no-op on success
  }
  if (ok) {
    I.ftst.last_restored.store(epoch, std::memory_order_relaxed);
  }
  return ok ? RestoreStatus::Ok : RestoreStatus::Timeout;
}

std::uint64_t last_restored_epoch() {
  return Runtime::current().impl().ftst.last_restored.load(
      std::memory_order_relaxed);
}

std::uint64_t checkpoint_digest() {
  return CheckpointStore::instance().digest();
}

void set_checkpoint_dir(const std::string& dir) {
  CheckpointStore::instance().set_disk_dir(dir);
}

void on_failure(std::function<void(const PeFailure&)> cb) {
  auto& I = Runtime::current().impl();
  std::lock_guard<std::mutex> lk(I.ftst.mu);
  I.ftst.callbacks.push_back(std::move(cb));
}

void on_recovery(std::function<void(std::uint64_t)> cb) {
  auto& I = Runtime::current().impl();
  std::lock_guard<std::mutex> lk(I.ftst.mu);
  I.ftst.recovery_callbacks.push_back(std::move(cb));
}

std::uint64_t recoveries() {
  return Runtime::current().impl().ftst.completed_rounds.load(
      std::memory_order_relaxed);
}

std::vector<int> failed_pes() {
  auto& I = Runtime::current().impl();
  std::lock_guard<std::mutex> lk(I.ftst.mu);
  return {I.ftst.failed.begin(), I.ftst.failed.end()};
}

bool auto_recover_enabled() {
  return Runtime::current().impl().cfg.machine.faults.auto_recover;
}

RetryPolicy retry_policy() {
  return Runtime::current().impl().cfg.machine.faults.retry;
}

}  // namespace ft
}  // namespace cx
