// Fault-tolerance handlers (failure notification, checkpoint/restore
// collectives) and the cx::ft public API. The collectives must walk
// the scheduler's live per-PE state, so they live in core/, not ft/.
// All ft traffic is uncounted control traffic: no processed++.

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/future.hpp"
#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace cx {

void Runtime::Impl::on_ft_failure(MessagePtr msg) {
  FtFailureHeader h = pup::from_bytes<FtFailureHeader>(msg->data);
  const int pe = h.failure.pe;
  if (pe < 0 || pe >= P) return;
  if (!ftst.failed.insert(pe).second) return;  // already known
  CX_LOG_WARN("cx::ft: PE ", pe, " failed (",
              cx::ft::failure_kind_name(h.failure.kind),
              ") at t=", h.failure.time);
  // Its local checkpoint memory died with it; the buddy copy remains.
  cx::ft::CheckpointStore::instance().drop_primary(pe);
  auto cbs = ftst.callbacks;  // a callback may register further callbacks
  for (auto& cb : cbs) cb(h.failure);
}

void Runtime::Impl::on_ckpt(MessagePtr msg) {
  CkptHeader h = pup::from_bytes<CkptHeader>(msg->data);
  auto& ps = me();
  PeBlob blob;
  blob.created = ps.created;
  blob.processed = ps.processed;
  blob.next_future = ps.next_future;
  std::vector<CollectionId> cids;
  cids.reserve(ps.colls.size());
  for (auto& [cid, cm] : ps.colls) cids.push_back(cid);
  std::sort(cids.begin(), cids.end());
  for (const CollectionId cid : cids) {
    CollMeta& cm = ps.colls.at(cid);
    CollBlob cb;
    cb.info = cm.info;
    std::vector<Index> order;
    order.reserve(cm.elements.size());
    for (auto& [idx, obj] : cm.elements) order.push_back(idx);
    std::sort(order.begin(), order.end());
    for (const Index& idx : order) {
      Chare* obj = cm.elements.at(idx).get();
      ElementBlob eb;
      eb.idx = idx;
      eb.red_no = obj->red_no_;
      pup::Sizer sz;
      obj->pup(sz);
      eb.state.resize(sz.size());
      pup::Packer pk(eb.state.data(), eb.state.size());
      obj->pup(pk);
      cb.elements.push_back(std::move(eb));
    }
    order.clear();
    for (auto& [idx, pe] : cm.overrides) order.push_back(idx);
    std::sort(order.begin(), order.end());
    for (const Index& idx : order) {
      cb.overrides.push_back({idx, cm.overrides.at(idx)});
    }
    blob.colls.push_back(std::move(cb));
  }
  for (auto& [key, rs] : ps.red_root) {
    RedBlob rb;
    rb.coll = key.first;
    rb.red_no = key.second;
    rb.count = rs.count;
    rb.has_acc = rs.has_acc;
    rb.acc = rs.acc;
    rb.combiner = rs.combiner;
    rb.cb = rs.cb;
    blob.reductions.push_back(std::move(rb));
  }
  auto bytes = pup::to_bytes(blob);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::FtCheckpoint,
                 h.epoch, bytes.size());
  cx::ft::CheckpointStore::instance().store(mype(), h.epoch,
                                            std::move(bytes));
  CkptAckHeader a;
  a.epoch = h.epoch;
  a.reply = h.reply;
  raw_send(wire::make_msg(h_ckpt_ack, h.reply.pe, a));
}

void Runtime::Impl::on_ckpt_ack(MessagePtr msg) {
  CkptAckHeader h = pup::from_bytes<CkptAckHeader>(msg->data);
  if (++ftst.ckpt_acks[h.epoch] < P) return;
  ftst.ckpt_acks.erase(h.epoch);
  send_future_bytes(h.reply, {});
}

void Runtime::Impl::on_restore(MessagePtr msg) {
  RestoreHeader h = pup::from_bytes<RestoreHeader>(msg->data);
  auto& ps = me();
  // Discard post-checkpoint scheduler state. Futures and live fibers
  // survive: the restore driver itself is suspended on one.
  ps.colls.clear();
  ps.stash.clear();
  ps.red_root.clear();
  ps.bcast_done_root.clear();
  ps.ins_count.clear();
  ps.size_acks.clear();
  if (mype() == 0) {
    lb.clear();
    qd = QdState{};
  }
  const auto bytes = cx::ft::CheckpointStore::instance().latest(mype());
  if (!bytes.empty()) {
    PeBlob blob = pup::from_bytes<PeBlob>(bytes);
    for (auto& cb : blob.colls) {
      CollMeta& cm = ps.colls[cb.info.id];
      cm.info = cb.info;
      const auto& fac = Registry::instance().factory(cb.info.ctor);
      if (fac.construct_default == nullptr) {
        CX_LOG_ERROR("chare type of collection ", cb.info.id,
                     " is not default-constructible; cannot restore");
        throw std::logic_error(
            "restore requires default-constructible chares");
      }
      for (auto& eb : cb.elements) {
        staged_coll() = cb.info.id;
        staged_idx() = eb.idx;
        Chare* obj = fac.construct_default();
        staged_coll() = kInvalidCollection;
        pup::Unpacker u(eb.state.data(), eb.state.size());
        obj->pup(u);
        obj->red_no_ = eb.red_no;
        obj->load_ = 0.0;
        cm.elements[eb.idx].reset(obj);
        obj->on_migrated();
      }
      for (auto& ob : cb.overrides) cm.overrides[ob.idx] = ob.pe;
    }
    for (auto& rb : blob.reductions) {
      RedState rs;
      rs.count = rb.count;
      rs.has_acc = rb.has_acc;
      rs.acc = rb.acc;
      rs.combiner = rb.combiner;
      rs.cb = rb.cb;
      ps.red_root[{rb.coll, rb.red_no}] = std::move(rs);
    }
    // Roll the quiescence counters back too, so created/processed match
    // a run that never diverged from this checkpoint.
    ps.created = blob.created;
    ps.processed = blob.processed;
    // Same for the future-id counter: element state PUPs callbacks,
    // which embed future ids, so a restored run must re-issue the ids a
    // never-diverged run would (the digest tests compare them). Stale
    // post-checkpoint slots are dropped; a slot with a suspended waiter
    // (the restore ack the driver itself blocks on) survives, and
    // make_future_slot skips over any survivor when reallocating.
    for (auto it = ps.futures.begin(); it != ps.futures.end();) {
      if (it->first > blob.next_future && it->second.waiter == nullptr) {
        it = ps.futures.erase(it);
      } else {
        ++it;
      }
    }
    ps.next_future = blob.next_future;
  }
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::FtRestore,
                 h.epoch, bytes.size());
  RestoreAckHeader a;
  a.reply = h.reply;
  raw_send(wire::make_msg(h_restore_ack, h.reply.pe, a));
}

void Runtime::Impl::on_restore_ack(MessagePtr msg) {
  RestoreAckHeader h = pup::from_bytes<RestoreAckHeader>(msg->data);
  if (++ftst.restore_acks < P) return;
  ftst.restore_acks = 0;
  send_future_bytes(h.reply, {});
}

// ---------------------------------------------------------------------------
// cx::ft public API (declared in ft/ft.hpp; lives here because the
// collectives must walk the scheduler's live per-PE state)

namespace ft {

std::uint64_t checkpoint() {
  auto& I = Runtime::current().impl();
  const std::uint64_t epoch = ++I.ftst.next_epoch;
  const ReplyTo reply = detail::make_future_slot();
  CkptHeader h;
  h.epoch = epoch;
  h.reply = reply;
  for (int pe = 0; pe < I.P; ++pe) {
    I.raw_send(wire::make_msg(I.h_ckpt, pe, h));
  }
  (void)detail::future_get_bytes(reply);  // blocks the driver fiber
  I.me().futures.erase(reply.fid);  // one-shot internal slot
  return epoch;
}

void restore() {
  auto& I = Runtime::current().impl();
  const std::uint64_t epoch = CheckpointStore::instance().latest_epoch();
  if (epoch == 0) {
    throw std::logic_error("cx::ft::restore(): no checkpoint to restore");
  }
  // Bring dead PEs back first so the restore collective reaches them.
  const std::vector<int> dead(I.ftst.failed.begin(), I.ftst.failed.end());
  for (const int pe : dead) I.machine->revive_pe(pe);
  I.ftst.failed.clear();
  const ReplyTo reply = detail::make_future_slot();
  RestoreHeader h;
  h.epoch = epoch;
  h.reply = reply;
  for (int pe = 0; pe < I.P; ++pe) {
    I.raw_send(wire::make_msg(I.h_restore, pe, h));
  }
  (void)detail::future_get_bytes(reply);
  // Release the ack slot: with next_future rolled back to the checkpoint
  // value, the id must be reusable or post-restore allocations would
  // diverge from a never-diverged run's.
  I.me().futures.erase(reply.fid);
}

std::uint64_t checkpoint_digest() {
  return CheckpointStore::instance().digest();
}

void set_checkpoint_dir(const std::string& dir) {
  CheckpointStore::instance().set_disk_dir(dir);
}

void on_failure(std::function<void(const PeFailure&)> cb) {
  Runtime::current().impl().ftst.callbacks.push_back(std::move(cb));
}

std::vector<int> failed_pes() {
  const auto& failed = Runtime::current().impl().ftst.failed;
  return {failed.begin(), failed.end()};
}

}  // namespace ft
}  // namespace cx
