#pragma once
// Load-balancing strategies (paper §II-J, §V-B).
//
// The runtime measures per-chare load (entry-method execution time; in
// the simulated backend this is virtual time, so figure-scale LB studies
// are exact). At an AtSync point the coordinator collects all records of
// a collection, runs a strategy, and migrates chares accordingly.
//
// Strategies (registered by name, selectable via RuntimeConfig):
//   greedy — heaviest chare to least-loaded PE (Charm++ GreedyLB)
//   refine — move chares off overloaded PEs only (Charm++ RefineLB)
//   rotate — shift every chare to PE+1 (testing/ablation)
//   random — random placement (ablation baseline)
//   none   — measure but never move

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/index.hpp"
#include "pup/pup.hpp"

namespace cx {

struct ChareLoadRecord {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::int32_t pe = 0;
  double load = 0.0;

  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | pe;
    p | load;
  }
};

struct LbMove {
  Index idx;
  std::int32_t from_pe = 0;
  std::int32_t to_pe = 0;
};

/// A strategy maps measured loads to migrations.
using LbStrategy = std::function<std::vector<LbMove>(
    const std::vector<ChareLoadRecord>& records, int num_pes,
    std::uint64_t seed)>;

/// Register a strategy under `name` (process-global).
void register_lb_strategy(const std::string& name, LbStrategy fn);

/// Look up a strategy; throws std::out_of_range for unknown names.
const LbStrategy& lookup_lb_strategy(const std::string& name);

/// Max-load / average-load ratio of an assignment — the imbalance metric
/// used in evaluations (1.0 = perfectly balanced).
double imbalance_ratio(const std::vector<ChareLoadRecord>& records,
                       int num_pes);

}  // namespace cx
