#pragma once
// Futures (paper §II-D, §II-H3).
//
// A Future is a proxy for a value that will arrive later. Futures are
// created explicitly (cx::make_future<T>()), returned by proxy call<>()
// (the `ret=True` keyword of the paper), can be sent to other chares as
// entry-method arguments, and can be reduction targets.
//
// get() suspends the calling fiber — the PE keeps scheduling other work
// while waiting, so blocking a future never blocks the process (§II-D).
// get() must run on the creating PE inside a threaded entry method.
//
// get_for(timeout) is the fault-aware variant (cx::ft): it gives up after
// `timeout` seconds of backend time (virtual under the simulator, wall
// under threads) so a caller can detect a dead producer and degrade
// gracefully instead of hanging.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/ids.hpp"
#include "pup/pup.hpp"

namespace cx {

namespace detail {
// Implemented in runtime.cpp.
ReplyTo make_future_slot();
std::vector<std::byte> future_get_bytes(const ReplyTo& f);
std::optional<std::vector<std::byte>> future_get_bytes_for(const ReplyTo& f,
                                                           double timeout_s);
bool future_ready(const ReplyTo& f);
void future_send_bytes(const ReplyTo& f, std::vector<std::byte>&& bytes);
}  // namespace detail

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(const ReplyTo& slot) : slot_(slot) {}

  /// Block (the current fiber) until the value arrives, then return it.
  [[nodiscard]] T get() const {
    auto bytes = detail::future_get_bytes(slot_);
    return pup::from_bytes<T>(bytes);
  }

  /// Like get(), but give up after `timeout_s` seconds of backend time.
  /// Returns nullopt on timeout; the future stays valid and may still
  /// be fulfilled (and get()/get_for() retried) later.
  [[nodiscard]] std::optional<T> get_for(double timeout_s) const {
    auto bytes = detail::future_get_bytes_for(slot_, timeout_s);
    if (!bytes.has_value()) return std::nullopt;
    return pup::from_bytes<T>(*bytes);
  }

  /// Fulfill the future from anywhere (routed to the creating PE).
  void send(const T& value) const {
    T copy = value;
    detail::future_send_bytes(slot_, pup::to_bytes(copy));
  }

  /// True once a value is available (non-blocking; creator PE only).
  [[nodiscard]] bool ready() const { return detail::future_ready(slot_); }

  /// The raw delivery slot (used to build reduction callbacks).
  [[nodiscard]] const ReplyTo& slot() const noexcept { return slot_; }

  [[nodiscard]] bool valid() const noexcept { return slot_.valid(); }

  void pup(pup::Er& p) { p | slot_; }

 private:
  ReplyTo slot_;
};

/// Future with no payload (broadcast completions, empty reductions).
template <>
class Future<void> {
 public:
  Future() = default;
  explicit Future(const ReplyTo& slot) : slot_(slot) {}

  void get() const { (void)detail::future_get_bytes(slot_); }
  /// True if the completion arrived within `timeout_s` seconds.
  [[nodiscard]] bool get_for(double timeout_s) const {
    return detail::future_get_bytes_for(slot_, timeout_s).has_value();
  }
  void send() const { detail::future_send_bytes(slot_, {}); }
  [[nodiscard]] bool ready() const { return detail::future_ready(slot_); }
  [[nodiscard]] const ReplyTo& slot() const noexcept { return slot_; }
  [[nodiscard]] bool valid() const noexcept { return slot_.valid(); }
  void pup(pup::Er& p) { p | slot_; }

 private:
  ReplyTo slot_;
};

/// Create a future on the calling PE (paper: charm.createFuture()).
template <typename T>
Future<T> make_future() {
  return Future<T>(detail::make_future_slot());
}

}  // namespace cx
