#include "core/lb.hpp"

#include <algorithm>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace cx {

namespace {

std::vector<double> pe_loads(const std::vector<ChareLoadRecord>& records,
                             int num_pes) {
  std::vector<double> loads(static_cast<std::size_t>(num_pes), 0.0);
  for (const auto& r : records) {
    loads[static_cast<std::size_t>(r.pe)] += r.load;
  }
  return loads;
}

/// GreedyLB: place chares heaviest-first onto the least-loaded PE.
std::vector<LbMove> greedy(const std::vector<ChareLoadRecord>& records,
                           int num_pes, std::uint64_t) {
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return records[a].load > records[b].load;
  });
  using Slot = std::pair<double, int>;  // (load, pe)
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (int pe = 0; pe < num_pes; ++pe) heap.push({0.0, pe});
  std::vector<LbMove> moves;
  for (std::size_t i : order) {
    auto [load, pe] = heap.top();
    heap.pop();
    heap.push({load + records[i].load, pe});
    if (pe != records[i].pe) {
      moves.push_back({records[i].idx, records[i].pe, pe});
    }
  }
  return moves;
}

/// RefineLB: only offload from PEs above (1+tol) * average.
std::vector<LbMove> refine(const std::vector<ChareLoadRecord>& records,
                           int num_pes, std::uint64_t) {
  constexpr double kTol = 0.05;
  auto loads = pe_loads(records, num_pes);
  double total = 0.0;
  for (double l : loads) total += l;
  const double avg = total / static_cast<double>(num_pes);
  const double ceiling = avg * (1.0 + kTol);

  // Chares grouped per PE, heaviest first.
  std::unordered_map<int, std::vector<std::size_t>> by_pe;
  for (std::size_t i = 0; i < records.size(); ++i) {
    by_pe[records[i].pe].push_back(i);
  }
  for (auto& [pe, v] : by_pe) {
    std::sort(v.begin(), v.end(), [&](std::size_t a, std::size_t b) {
      return records[a].load > records[b].load;
    });
  }

  std::vector<LbMove> moves;
  for (int pe = 0; pe < num_pes; ++pe) {
    auto it = by_pe.find(pe);
    if (it == by_pe.end()) continue;
    auto& mine = it->second;
    std::size_t next = 0;
    while (loads[static_cast<std::size_t>(pe)] > ceiling &&
           next < mine.size()) {
      const auto i = mine[next++];
      const double l = records[i].load;
      // Skip chares whose removal would overshoot below average.
      if (loads[static_cast<std::size_t>(pe)] - l < avg * 0.95) continue;
      // Receiver: least-loaded PE that stays under the ceiling.
      int best = -1;
      double best_load = ceiling;
      for (int q = 0; q < num_pes; ++q) {
        if (q == pe) continue;
        const double ql = loads[static_cast<std::size_t>(q)];
        if (ql + l <= best_load) {
          best_load = ql + l;
          best = q;
        }
      }
      if (best < 0) break;
      moves.push_back({records[i].idx, pe, best});
      loads[static_cast<std::size_t>(pe)] -= l;
      loads[static_cast<std::size_t>(best)] += l;
    }
  }
  return moves;
}

std::vector<LbMove> rotate(const std::vector<ChareLoadRecord>& records,
                           int num_pes, std::uint64_t) {
  std::vector<LbMove> moves;
  if (num_pes < 2) return moves;
  for (const auto& r : records) {
    moves.push_back({r.idx, r.pe, (r.pe + 1) % num_pes});
  }
  return moves;
}

std::vector<LbMove> random_lb(const std::vector<ChareLoadRecord>& records,
                              int num_pes, std::uint64_t seed) {
  cxu::Rng rng(seed ^ 0xdecafbadULL);
  std::vector<LbMove> moves;
  for (const auto& r : records) {
    const int to = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(num_pes)));
    if (to != r.pe) moves.push_back({r.idx, r.pe, to});
  }
  return moves;
}

std::vector<LbMove> none(const std::vector<ChareLoadRecord>&, int,
                         std::uint64_t) {
  return {};
}

struct StrategyRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, LbStrategy> strategies;

  StrategyRegistry() {
    strategies["greedy"] = greedy;
    strategies["refine"] = refine;
    strategies["rotate"] = rotate;
    strategies["random"] = random_lb;
    strategies["none"] = none;
  }

  static StrategyRegistry& instance() {
    static StrategyRegistry r;
    return r;
  }
};

}  // namespace

void register_lb_strategy(const std::string& name, LbStrategy fn) {
  auto& r = StrategyRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.strategies[name] = std::move(fn);
}

const LbStrategy& lookup_lb_strategy(const std::string& name) {
  auto& r = StrategyRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.strategies.find(name);
  if (it == r.strategies.end()) {
    throw std::out_of_range("unknown LB strategy: " + name);
  }
  return it->second;
}

double imbalance_ratio(const std::vector<ChareLoadRecord>& records,
                       int num_pes) {
  if (records.empty() || num_pes <= 0) return 1.0;
  auto loads = pe_loads(records, num_pes);
  double total = 0.0, max = 0.0;
  for (double l : loads) {
    total += l;
    max = std::max(max, l);
  }
  const double avg = total / static_cast<double>(num_pes);
  return avg > 0.0 ? max / avg : 1.0;
}

}  // namespace cx
