#pragma once
// Small identifier/value types shared across the core runtime.

#include <cstdint>

#include "pup/pup.hpp"

namespace cx {

using CollectionId = std::uint32_t;
using EpId = std::uint32_t;        ///< entry-method id (global registry)
using FactoryId = std::uint32_t;   ///< constructor-factory id
using FutureId = std::uint64_t;

constexpr CollectionId kInvalidCollection = 0xffffffffu;

/// Where to deliver an entry method's return value (the `ret=True`
/// future of the paper, §II-D). Invalid reply = fire-and-forget.
struct ReplyTo {
  std::int32_t pe = -1;
  FutureId fid = 0;

  [[nodiscard]] bool valid() const noexcept { return pe >= 0; }

  void pup(pup::Er& p) {
    p | pe;
    p | fid;
  }
};

/// Collection kinds (paper §II-C): one chare class can be used for any of
/// these — unlike Charm++, where the kind is fixed at declaration time.
enum class CollectionKind : std::uint8_t {
  Singleton = 0,  ///< a single chare (Chare(...) in the paper)
  Group = 1,      ///< one element per PE
  Array = 2,      ///< dense n-dimensional array
  SparseArray = 3 ///< dynamic insertion (ckInsert/ckDoneInserting)
};

}  // namespace cx
