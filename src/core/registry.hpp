#pragma once
// Entry-method and constructor registration.
//
// Charm++ requires interface (.ci) files processed by a translator; the
// paper's model removes that step. Here, C++17 `template<auto>` plays the
// role of Python reflection: the first use of `ep_id<&MyChare::foo>()`
// registers an invoker able to (a) unpack the argument tuple from a
// message and (b) apply the member function, sending the return value to
// a reply future when requested (the `ret=True` path).
//
// Per-entry-method attributes (paper §II-E, §II-H):
//   set_threaded<&C::m>()      — run in a fiber; may block on futures/wait
//   set_when<&C::m>(predicate) — deliver only when predicate(chare, args)
//                                holds; otherwise buffer at the receiver.

#include <deque>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <vector>

#include "core/ids.hpp"
#include "core/when.hpp"
#include "pup/pup.hpp"

namespace cx {

class Chare;

namespace detail {

/// Deliver a packed return value to a future (defined in runtime.cpp).
void reply_with_bytes(const ReplyTo& reply, std::vector<std::byte>&& bytes);

template <typename T>
void send_reply(const ReplyTo& reply, T& value) {
  if (!reply.valid()) return;
  reply_with_bytes(reply, pup::to_bytes(value));
}

inline void send_empty_reply(const ReplyTo& reply) {
  if (!reply.valid()) return;
  reply_with_bytes(reply, {});
}

template <typename T>
struct MethodTraits;

template <typename C, typename R, typename... As>
struct MethodTraits<R (C::*)(As...)> {
  using Class = C;
  using Ret = R;
  using ArgsTuple = std::tuple<std::decay_t<As>...>;
};

}  // namespace detail

/// Type-erased registered entry method.
struct EpInfo {
  /// Unpack the serialized argument tuple into a heap allocation.
  std::shared_ptr<void> (*unpack)(pup::Unpacker& u) = nullptr;
  /// PUP-traverse an argument tuple: sizing and packing passes walk the
  /// live tuple, so the wire builder can serialize it straight into the
  /// message buffer (no intermediate vector). Also used to forward
  /// buffered messages when their target chare migrates.
  void (*pup_args)(void* args_tuple, pup::Er& p) = nullptr;
  /// Apply the method; consumes the tuple's contents (move).
  void (*invoke)(Chare* obj, void* args_tuple, const ReplyTo& reply) = nullptr;
  /// Run inside a fiber so the method may suspend.
  bool threaded = false;
  /// Optional delivery predicate (the `when` decorator).
  std::function<bool(Chare*, void*)> when;
  /// Static dependency set of the when condition (set_when_deps<M>):
  /// every message of this entry method reads the same attributes.
  std::shared_ptr<const WhenDeps> when_deps_static;
  /// Per-message dependency extractor (set_when_deps_fn<M>): the dynamic
  /// layer resolves the target method from the message and returns its
  /// condition's deps. May return nullptr (unknown → conservative).
  /// The returned pointer must stay valid for the process lifetime.
  std::function<const WhenDeps*(Chare*, void*)> when_deps;
};

/// Type-erased chare factories.
struct FactoryInfo {
  /// Construct from packed constructor arguments.
  Chare* (*construct)(const void* data, std::size_t len) = nullptr;
  /// Default-construct (for migration; null if not default-constructible).
  Chare* (*construct_default)() = nullptr;
};

/// Global append-only registry (process-wide; ids are stable across
/// Runtime instances, which matters for tests running many runtimes).
/// Deque storage keeps references valid under concurrent lazy
/// registration from PE threads.
class Registry {
 public:
  static Registry& instance();

  EpId add_ep(EpInfo info);
  FactoryId add_factory(FactoryInfo info);

  [[nodiscard]] const EpInfo& ep(EpId id) const;
  [[nodiscard]] EpInfo& mutable_ep(EpId id);
  [[nodiscard]] const FactoryInfo& factory(FactoryId id) const;

 private:
  mutable std::mutex mutex_;
  std::deque<EpInfo> eps_;
  std::deque<FactoryInfo> factories_;
};

namespace detail {

template <auto M>
EpId register_ep() {
  using Traits = MethodTraits<decltype(M)>;
  using C = typename Traits::Class;
  using Ret = typename Traits::Ret;
  using Tuple = typename Traits::ArgsTuple;
  EpInfo info;
  info.unpack = +[](pup::Unpacker& u) -> std::shared_ptr<void> {
    auto t = std::make_shared<Tuple>();
    u | *t;
    return t;
  };
  info.pup_args = +[](void* args_tuple, pup::Er& p) {
    p | *static_cast<Tuple*>(args_tuple);
  };
  info.invoke = +[](Chare* obj, void* args_tuple, const ReplyTo& reply) {
    auto& t = *static_cast<Tuple*>(args_tuple);
    C* self = static_cast<C*>(obj);
    if constexpr (std::is_void_v<Ret>) {
      std::apply(
          [&](auto&... as) { (self->*M)(std::move(as)...); }, t);
      send_empty_reply(reply);
    } else {
      Ret r = std::apply(
          [&](auto&... as) { return (self->*M)(std::move(as)...); }, t);
      send_reply(reply, r);
    }
  };
  return Registry::instance().add_ep(std::move(info));
}

template <typename C, typename... CArgs>
FactoryId register_factory() {
  FactoryInfo info;
  info.construct = +[](const void* data, std::size_t len) -> Chare* {
    using Tuple = std::tuple<std::decay_t<CArgs>...>;
    pup::Unpacker u(data, len);
    Tuple t;
    u | t;
    return std::apply(
        [](auto&... as) -> Chare* { return new C(std::move(as)...); }, t);
  };
  if constexpr (std::is_default_constructible_v<C>) {
    info.construct_default = +[]() -> Chare* { return new C(); };
  }
  return Registry::instance().add_factory(info);
}

}  // namespace detail

template <auto M>
EpId ep_id();
template <typename C, typename... CArgs>
FactoryId factory_id();

namespace detail {

// Registration must happen at static-initialization time, not on first
// use: the SocketMachine backend runs one copy of the binary per OS
// process, and entry-method / factory ids travel inside messages, so
// every rank must assign identical ids. Lazy first-use registration
// orders ids by control flow (the driver rank touches proxies that
// worker ranks never do); these registrar objects instead force every
// instantiated id to register during static init, whose order is fixed
// by the binary — identical across ranks exec'ing the same executable.
// The guarded function-local static in ep_id()/factory_id() keeps
// things correct even for calls that run before a registrar does
// (e.g. other static initializers).
template <auto M>
struct EpAutoReg {
  EpAutoReg() { (void)cx::ep_id<M>(); }
};
template <auto M>
inline EpAutoReg<M> ep_auto_reg{};

template <typename C, typename... CArgs>
struct FactoryAutoReg {
  FactoryAutoReg() { (void)cx::factory_id<C, CArgs...>(); }
};
template <typename C, typename... CArgs>
inline FactoryAutoReg<C, CArgs...> factory_auto_reg{};

}  // namespace detail

/// Stable id for entry method M; registered during static init (the
/// odr-use of the registrar below pins the registration to program
/// startup so ids agree across SocketMachine ranks).
template <auto M>
EpId ep_id() {
  (void)&detail::ep_auto_reg<M>;
  static const EpId id = detail::register_ep<M>();
  return id;
}

/// Stable id for constructing C from (CArgs...); registered during
/// static init like ep_id().
template <typename C, typename... CArgs>
FactoryId factory_id() {
  (void)&detail::factory_auto_reg<C, CArgs...>;
  static const FactoryId id = detail::register_factory<C, CArgs...>();
  return id;
}

/// Mark entry method M as threaded (may call Future::get(), wait(), ...).
template <auto M>
void set_threaded(bool on = true) {
  Registry::instance().mutable_ep(ep_id<M>()).threaded = on;
}

/// Attach a `when` delivery predicate to entry method M. The predicate
/// sees the chare and the (already unpacked) arguments; the message is
/// buffered at the receiver until it returns true (paper §II-E).
template <auto M, typename F>
void set_when(F&& f) {
  using Traits = detail::MethodTraits<decltype(M)>;
  using C = typename Traits::Class;
  using Tuple = typename Traits::ArgsTuple;
  Registry::instance().mutable_ep(ep_id<M>()).when =
      [fn = std::forward<F>(f)](Chare* obj, void* args_tuple) -> bool {
    auto& t = *static_cast<Tuple*>(args_tuple);
    return std::apply(
        [&](auto&... as) { return fn(static_cast<C&>(*obj), as...); }, t);
  };
}

/// Remove a previously attached `when` predicate (and its deps).
template <auto M>
void clear_when() {
  EpInfo& info = Registry::instance().mutable_ep(ep_id<M>());
  info.when = nullptr;
  info.when_deps_static = nullptr;
  info.when_deps = nullptr;
}

/// Declare the chare attributes M's when predicate reads. A chare whose
/// predicate has declared deps must call mark_when_dirty(attr_key("x"))
/// whenever it writes one of them; in exchange, buffered messages are
/// only re-tested when a dependency actually changed instead of after
/// every entry method. Without this call the engine stays conservative.
template <auto M>
void set_when_deps(WhenDeps deps) {
  deps.known = true;
  Registry::instance().mutable_ep(ep_id<M>()).when_deps_static =
      std::make_shared<const WhenDeps>(std::move(deps));
}

/// Convenience: declare deps by attribute name.
template <auto M>
void set_when_deps(std::initializer_list<std::string_view> names) {
  WhenDeps d;
  for (const auto n : names) d.add(attr_key(n));
  set_when_deps<M>(std::move(d));
}

/// Attach a per-message dependency extractor: `f(chare, args...)` returns
/// the condition deps of that particular message (process-lifetime
/// pointer), or nullptr for "unknown". Used by the dynamic model layer,
/// where one universal entry method carries many differently-guarded
/// target methods.
template <auto M, typename F>
void set_when_deps_fn(F&& f) {
  using Traits = detail::MethodTraits<decltype(M)>;
  using C = typename Traits::Class;
  using Tuple = typename Traits::ArgsTuple;
  Registry::instance().mutable_ep(ep_id<M>()).when_deps =
      [fn = std::forward<F>(f)](Chare* obj,
                                void* args_tuple) -> const WhenDeps* {
    auto& t = *static_cast<Tuple*>(args_tuple);
    return std::apply(
        [&](auto&... as) { return fn(static_cast<C&>(*obj), as...); }, t);
  };
}

}  // namespace cx
