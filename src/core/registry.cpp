#include "core/registry.hpp"

namespace cx {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

EpId Registry::add_ep(EpInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  eps_.push_back(std::move(info));
  return static_cast<EpId>(eps_.size() - 1);
}

FactoryId Registry::add_factory(FactoryInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_.push_back(std::move(info));
  return static_cast<FactoryId>(factories_.size() - 1);
}

const EpInfo& Registry::ep(EpId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return eps_.at(id);
}

EpInfo& Registry::mutable_ep(EpId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Attribute edits (set_when / clear_when / set_when_deps) can change
  // which buffered messages are eligible without any chare state
  // changing; the epoch bump makes every chare re-examine its buffer.
  bump_when_config_epoch();
  return eps_.at(id);
}

const FactoryInfo& Registry::factory(FactoryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.at(id);
}

}  // namespace cx
