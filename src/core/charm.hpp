#pragma once
// charm.hpp — the public umbrella header of the CharmX core runtime.
//
// This is the C++ rendering of the CharmPy programming model
// (Galvez, Senthil, Kale — IEEE CLUSTER 2018): distributed migratable
// objects (chares) with asynchronous remote method invocation, futures,
// `when` conditions, reductions, migration and dynamic load balancing,
// on top of a message-driven runtime.
//
// Quick map from the paper's Python API to this header:
//
//   class MyChare(Chare)            class MyChare : public cx::Chare
//   Chare(MyChare, onPE=-1)         cx::create_chare<MyChare>(-1, ...)
//   Group(ChareClass, args=[...])   cx::create_group<ChareClass>(...)
//   Array(C, (20,20))               cx::create_array<C>({20, 20})
//   proxy.method(args)              proxy.send<&C::method>(args)
//   proxy.method(args, ret=True)    proxy.call<&C::method>(args) -> Future
//   charm.createFuture()            cx::make_future<T>()
//   @when('self.x == x')            cx::set_when<&C::m>(pred)
//   @threaded                       cx::set_threaded<&C::m>()
//   self.wait('cond')               this->wait([&]{ return cond; })
//   self.contribute(d, R.sum, t)    this->contribute(d, cx::reducer::sum<T>(), t)
//   self.migrate(pe)                this->migrate(pe)
//   charm.exit()                    cx::exit()
//   charm.start(main)               cx::Runtime rt(cfg); rt.run(main)

#include "core/chare.hpp"
#include "core/collection.hpp"
#include "core/future.hpp"
#include "core/index.hpp"
#include "core/lb.hpp"
#include "core/proxy.hpp"
#include "core/reduction.hpp"
#include "core/registry.hpp"
#include "core/runtime.hpp"

namespace cx {

// ---------------------------------------------------------------------------
// Collection creation (paper §II-B/C/G)

/// Create a single chare on `on_pe` (-1 lets the runtime choose), passing
/// `args` to the constructor. Paper: Chare(MyChare, onPE=...).
template <typename C, typename... Us>
ElementProxy<C> create_chare(int on_pe, Us&&... us) {
  auto args = std::make_tuple(std::decay_t<Us>(std::forward<Us>(us))...);
  const CollectionId id = detail::create_collection(
      CollectionKind::Singleton, Index(0), 1,
      factory_id<C, std::decay_t<Us>...>(), pup::to_bytes(args), "block",
      on_pe);
  return ElementProxy<C>(id, Index(0));
}

/// Create a Group: one element per PE, indexed by PE number.
template <typename C, typename... Us>
CollectionProxy<C> create_group(Us&&... us) {
  auto args = std::make_tuple(std::decay_t<Us>(std::forward<Us>(us))...);
  const CollectionId id = detail::create_collection(
      CollectionKind::Group, Index(0), 1,
      factory_id<C, std::decay_t<Us>...>(), pup::to_bytes(args), "block",
      -1);
  return CollectionProxy<C>(id);
}

struct ArrayOptions {
  std::string map = "block";  ///< placement map name (see register_map)
};

/// Create a dense array with explicit options (e.g. a custom ArrayMap).
template <typename C, typename... Us>
CollectionProxy<C> create_array_opts(const Index& dims,
                                     const ArrayOptions& opts, Us&&... us) {
  auto args = std::make_tuple(std::decay_t<Us>(std::forward<Us>(us))...);
  const CollectionId id = detail::create_collection(
      CollectionKind::Array, dims, dims.ndims(),
      factory_id<C, std::decay_t<Us>...>(), pup::to_bytes(args), opts.map,
      -1);
  return CollectionProxy<C>(id);
}

/// Create a dense n-dimensional chare array of shape `dims`.
template <typename C, typename... Us>
CollectionProxy<C> create_array(const Index& dims, Us&&... us) {
  return create_array_opts<C>(dims, ArrayOptions{},
                              std::forward<Us>(us)...);
}

/// Create a sparse array: elements are added later with proxy.insert()
/// and finalized with proxy.done_inserting() (paper §II-G).
template <typename C>
CollectionProxy<C> create_sparse(int ndims,
                                 const std::string& map = "hash") {
  std::tuple<> no_args;
  const CollectionId id = detail::create_collection(
      CollectionKind::SparseArray, Index(0), ndims, factory_id<C>(),
      pup::to_bytes(no_args), map, -1);
  return CollectionProxy<C>(id);
}

// ---------------------------------------------------------------------------
// Self proxies (thisProxy of the paper)

template <typename C>
ElementProxy<C> proxy_to(const C& chare) {
  return ElementProxy<C>(chare.collection(), chare.this_index());
}

template <typename C>
CollectionProxy<C> collection_of(const C& chare) {
  return CollectionProxy<C>(chare.collection());
}

// ---------------------------------------------------------------------------
// Reduction contribute (member template definitions; see chare.hpp)

template <typename T>
void Chare::contribute(const T& value, CombineId reducer,
                       const Callback& target) {
  T copy = value;
  detail::contribute_bytes(*this, pup::to_bytes(copy), reducer, target);
}

template <typename T>
void Chare::contribute_gather(const T& value, const Callback& target) {
  std::vector<std::pair<Index, T>> one;
  one.emplace_back(this_index(), value);
  detail::contribute_bytes(*this, pup::to_bytes(one), reducer::gather<T>(),
                           target);
}

template <typename S, typename T>
void Chare::contribute(const S& section, const T& value, CombineId reducer,
                       const Callback& target) {
  T copy = value;
  detail::section_contribute_bytes(*this, section.section_id(),
                                   pup::to_bytes(copy), reducer, target);
}

template <typename S>
void Chare::contribute(const S& section, const Callback& target) {
  detail::section_contribute_bytes(*this, section.section_id(), {},
                                   kNoCombine, target);
}

/// Callback targeting a future (usable as reduction target).
template <typename T>
Callback cb(const Future<T>& f) {
  return Callback::to_future(f.slot());
}

}  // namespace cx
