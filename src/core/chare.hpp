#pragma once
// Chare — the distributed migratable object (paper §II-B).
//
// Users define distributed types by inheriting from cx::Chare. Any method
// becomes remotely invocable through a proxy (see proxy.hpp); no interface
// files or preprocessing are involved. A single chare class can be used
// for singleton chares, Groups and Arrays of any dimension — the paper's
// key flexibility point over Charm++.

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/ids.hpp"
#include "core/index.hpp"
#include "core/reduction.hpp"
#include "core/runtime.hpp"
#include "core/when.hpp"
#include "pup/pup.hpp"

namespace cxf {
class Fiber;
}

namespace cx {

class Runtime;

/// A buffered entry-method delivery (used by `when` predicates and by
/// messages that arrive before their target element exists).
struct PendingInvoke {
  /// Sentinel for n_slots: dependency count exceeded the inline slots,
  /// fall back to DirtyClock::any_since over deps->attrs.
  static constexpr std::uint8_t kSlowDeps = 0xff;

  EpId ep = 0;
  std::shared_ptr<void> args;  ///< unpacked argument tuple
  ReplyTo reply;
  ReplyTo bcast_done;  ///< broadcast-completion slot (if part of a bcast)
  std::uint64_t seq = 0;       ///< chare-wide arrival order (FIFO)
  const WhenDeps* deps = nullptr;  ///< condition deps (null → conservative)
  std::uint64_t tested_at = 0;     ///< dirty-clock tick of the last test
  /// Cached dirty-clock slots of deps->attrs (fast candidate check).
  std::array<const std::uint64_t*, 2> dep_slots{};
  std::uint8_t n_slots = 0;
};

/// Per-chare buffer of when-gated deliveries, bucketed by (entry point,
/// condition dependency set). All messages of a bucket share the same
/// deps pointer, so a whole bucket can be skipped with one clock check;
/// FIFO order among eligible messages is preserved through `seq`.
struct WhenBuffer {
  struct Bucket {
    EpId ep = 0;
    const WhenDeps* deps = nullptr;  ///< shared by every message in q
    /// Every message in q has tested_at >= floor: if no dep was marked
    /// after floor, no message in the bucket can have become eligible.
    std::uint64_t floor = 0;
    std::deque<PendingInvoke> q;
  };

  std::vector<Bucket> buckets;
  std::size_t total = 0;       ///< messages across all buckets
  std::size_t unknown = 0;     ///< messages without usable deps
  std::uint64_t next_seq = 0;  ///< arrival counter (survives drains)

  [[nodiscard]] bool empty() const noexcept { return total == 0; }

  Bucket& bucket_for(EpId ep, const WhenDeps* deps) {
    for (auto& b : buckets) {
      if (b.ep == ep && b.deps == deps) return b;
    }
    buckets.push_back(Bucket{ep, deps, 0, {}});
    return buckets.back();
  }

  /// Visit every pending delivery in arrival (seq) order.
  template <typename Fn>
  void for_each_in_order(Fn&& fn) {
    std::vector<PendingInvoke*> all;
    all.reserve(total);
    for (auto& b : buckets) {
      for (auto& pi : b.q) all.push_back(&pi);
    }
    std::sort(all.begin(), all.end(),
              [](const PendingInvoke* x, const PendingInvoke* y) {
                return x->seq < y->seq;
              });
    for (PendingInvoke* pi : all) fn(*pi);
  }

  void clear() noexcept {
    buckets.clear();
    total = 0;
    unknown = 0;
  }
};

/// A fiber suspended in wait(cond) until the chare reaches a state.
struct PendingWait {
  std::function<bool()> cond;
  cxf::Fiber* fiber = nullptr;
  bool scheduled = false;  ///< resume already enqueued
};

class Chare {
 public:
  /// Adopts the identity (collection, index) staged by the runtime, so
  /// thisIndex is available inside user constructors (as in CharmPy).
  Chare();
  virtual ~Chare() = default;

  Chare(const Chare&) = delete;
  Chare& operator=(const Chare&) = delete;

  /// Serialize user state for migration (override in migratable chares).
  virtual void pup(pup::Er&) {}

  /// Called after dynamic load balancing completes (AtSync protocol).
  virtual void resume_from_sync() {}

  /// Called on the destination PE right after a migration lands.
  virtual void on_migrated() {}

  /// This chare's index within its collection (thisIndex in the paper).
  [[nodiscard]] const Index& this_index() const noexcept { return idx_; }

  /// Id of the collection this chare belongs to.
  [[nodiscard]] CollectionId collection() const noexcept { return coll_; }

 protected:
  // --- services available to entry-method bodies (defined in runtime.cpp
  //     or charm.hpp; they operate on the current Runtime) ---

  /// Suspend the current (threaded) entry method until cond() is true.
  /// cond is re-evaluated after every entry method executed on this chare
  /// (paper §II-H2).
  void wait(std::function<bool()> cond);

  /// Move this chare to another PE once the current entry method returns
  /// (paper §II-I).
  void migrate(int to_pe);

  /// Tell the runtime this chare is ready for load balancing; the runtime
  /// collects measured loads, rebalances, migrates, then calls
  /// resume_from_sync() on every element (paper §II-J).
  void at_sync();

  /// Measured load (seconds of entry-method execution) since last LB.
  [[nodiscard]] double measured_load() const noexcept { return load_; }

  /// Tell the condition engine that named chare state changed. Pairs
  /// with set_when_deps<M>: conditions whose declared deps were not
  /// marked since their last failed test are not re-evaluated. The
  /// dynamic layer calls this automatically on every attribute access.
  void mark_when_dirty(AttrKey attr) { dirty_.mark(attr); }

  /// Contribute to the current reduction of this chare's collection
  /// (paper §II-F). `target` receives the combined result.
  /// Defined in charm.hpp.
  template <typename T>
  void contribute(const T& value, CombineId reducer, const Callback& target);

  /// Empty reduction: synchronization only (data=None, reducer=None).
  void contribute(const Callback& target);

  /// Gather contribution: target receives all values sorted by index.
  template <typename T>
  void contribute_gather(const T& value, const Callback& target);

  /// Section-scoped contribution: fold `value` over the members of
  /// `section` only (a SectionProxy obtained from
  /// CollectionProxy::section). Multiple reductions per section may be
  /// in flight — each call advances this element's per-section sequence
  /// tag. Works from migrated elements: the fragment routes through the
  /// member's home PE (its delegate in the section tree). Defined in
  /// charm.hpp.
  template <typename S, typename T>
  void contribute(const S& section, const T& value, CombineId reducer,
                  const Callback& target);

  /// Section-scoped empty reduction (barrier over the section).
  template <typename S>
  void contribute(const S& section, const Callback& target);

 private:
  friend class Runtime;
  friend struct Runtime::Impl;

  CollectionId coll_ = kInvalidCollection;
  Index idx_;
  std::uint32_t red_no_ = 0;      ///< this element's next reduction number
  /// Per-section reduction sequence tags (travel with migration).
  std::map<std::uint64_t, std::uint32_t> sect_seq_;
  double load_ = 0.0;             ///< accumulated EM time since last LB
  bool migrate_pending_ = false;
  bool migrate_for_lb_ = false;
  int migrate_to_ = -1;
  bool sync_pending_ = false;
  bool post_active_ = false;  ///< re-entrancy guard for delivery rescans
  int active_fibers_ = 0;  ///< threaded EMs in flight (blocks migration)
  WhenBuffer buffered_;    ///< `when`-buffered deliveries (bucketed)
  DirtyClock dirty_;       ///< attribute-write clock for retest filtering
  std::uint64_t last_retest_clock_ = 0;  ///< dirty tick at last retest
  std::uint64_t when_epoch_seen_ = 0;    ///< config epoch buffer reflects
  std::vector<PendingWait> waits_;       ///< suspended wait() fibers
};

}  // namespace cx
