#pragma once
// Chare — the distributed migratable object (paper §II-B).
//
// Users define distributed types by inheriting from cx::Chare. Any method
// becomes remotely invocable through a proxy (see proxy.hpp); no interface
// files or preprocessing are involved. A single chare class can be used
// for singleton chares, Groups and Arrays of any dimension — the paper's
// key flexibility point over Charm++.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/ids.hpp"
#include "core/index.hpp"
#include "core/reduction.hpp"
#include "core/runtime.hpp"
#include "pup/pup.hpp"

namespace cxf {
class Fiber;
}

namespace cx {

class Runtime;

/// A buffered entry-method delivery (used by `when` predicates and by
/// messages that arrive before their target element exists).
struct PendingInvoke {
  EpId ep = 0;
  std::shared_ptr<void> args;  ///< unpacked argument tuple
  ReplyTo reply;
  ReplyTo bcast_done;  ///< broadcast-completion slot (if part of a bcast)
};

/// A fiber suspended in wait(cond) until the chare reaches a state.
struct PendingWait {
  std::function<bool()> cond;
  cxf::Fiber* fiber = nullptr;
  bool scheduled = false;  ///< resume already enqueued
};

class Chare {
 public:
  /// Adopts the identity (collection, index) staged by the runtime, so
  /// thisIndex is available inside user constructors (as in CharmPy).
  Chare();
  virtual ~Chare() = default;

  Chare(const Chare&) = delete;
  Chare& operator=(const Chare&) = delete;

  /// Serialize user state for migration (override in migratable chares).
  virtual void pup(pup::Er&) {}

  /// Called after dynamic load balancing completes (AtSync protocol).
  virtual void resume_from_sync() {}

  /// Called on the destination PE right after a migration lands.
  virtual void on_migrated() {}

  /// This chare's index within its collection (thisIndex in the paper).
  [[nodiscard]] const Index& this_index() const noexcept { return idx_; }

  /// Id of the collection this chare belongs to.
  [[nodiscard]] CollectionId collection() const noexcept { return coll_; }

 protected:
  // --- services available to entry-method bodies (defined in runtime.cpp
  //     or charm.hpp; they operate on the current Runtime) ---

  /// Suspend the current (threaded) entry method until cond() is true.
  /// cond is re-evaluated after every entry method executed on this chare
  /// (paper §II-H2).
  void wait(std::function<bool()> cond);

  /// Move this chare to another PE once the current entry method returns
  /// (paper §II-I).
  void migrate(int to_pe);

  /// Tell the runtime this chare is ready for load balancing; the runtime
  /// collects measured loads, rebalances, migrates, then calls
  /// resume_from_sync() on every element (paper §II-J).
  void at_sync();

  /// Measured load (seconds of entry-method execution) since last LB.
  [[nodiscard]] double measured_load() const noexcept { return load_; }

  /// Contribute to the current reduction of this chare's collection
  /// (paper §II-F). `target` receives the combined result.
  /// Defined in charm.hpp.
  template <typename T>
  void contribute(const T& value, CombineId reducer, const Callback& target);

  /// Empty reduction: synchronization only (data=None, reducer=None).
  void contribute(const Callback& target);

  /// Gather contribution: target receives all values sorted by index.
  template <typename T>
  void contribute_gather(const T& value, const Callback& target);

 private:
  friend class Runtime;
  friend struct Runtime::Impl;

  CollectionId coll_ = kInvalidCollection;
  Index idx_;
  std::uint32_t red_no_ = 0;      ///< this element's next reduction number
  double load_ = 0.0;             ///< accumulated EM time since last LB
  bool migrate_pending_ = false;
  bool migrate_for_lb_ = false;
  int migrate_to_ = -1;
  bool sync_pending_ = false;
  bool post_active_ = false;  ///< re-entrancy guard for delivery rescans
  int active_fibers_ = 0;  ///< threaded EMs in flight (blocks migration)
  std::deque<PendingInvoke> buffered_;   ///< `when`-buffered deliveries
  std::vector<PendingWait> waits_;       ///< suspended wait() fibers
};

}  // namespace cx
