#include "core/collection.hpp"

#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace cx {

namespace {

struct MapRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, MapFn> maps;

  MapRegistry() {
    // "block": contiguous row-major blocks of roughly equal size — the
    // default placement for dense arrays (keeps neighbors together).
    maps["block"] = [](const Index& idx, const CollectionInfo& info,
                       int num_pes) {
      const std::uint64_t n = dense_size(info.dims);
      if (n == 0) return 0;
      const std::uint64_t lin = linearize(idx, info.dims);
      return static_cast<int>(lin * static_cast<std::uint64_t>(num_pes) / n);
    };
    // "hash": scatter by index hash (default for sparse arrays).
    maps["hash"] = [](const Index& idx, const CollectionInfo&, int num_pes) {
      return static_cast<int>(idx.hash() % static_cast<std::uint64_t>(num_pes));
    };
    // "rr": round robin over the linearized index.
    maps["rr"] = [](const Index& idx, const CollectionInfo& info,
                    int num_pes) {
      if (info.kind == CollectionKind::Array) {
        return static_cast<int>(linearize(idx, info.dims) %
                                static_cast<std::uint64_t>(num_pes));
      }
      return static_cast<int>(idx.hash() % static_cast<std::uint64_t>(num_pes));
    };
  }

  static MapRegistry& instance() {
    static MapRegistry r;
    return r;
  }
};

}  // namespace

void register_map(const std::string& name, MapFn fn) {
  auto& r = MapRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.maps[name] = std::move(fn);
}

const MapFn& lookup_map(const std::string& name) {
  auto& r = MapRegistry::instance();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.maps.find(name);
  if (it == r.maps.end()) {
    throw std::out_of_range("unknown placement map: " + name);
  }
  return it->second;
}

std::uint64_t linearize(const Index& idx, const Index& dims) {
  std::uint64_t lin = 0;
  for (int i = 0; i < dims.ndims(); ++i) {
    lin = lin * static_cast<std::uint64_t>(dims[i]) +
          static_cast<std::uint64_t>(idx[i]);
  }
  return lin;
}

std::uint64_t dense_size(const Index& dims) {
  std::uint64_t n = 1;
  for (int i = 0; i < dims.ndims(); ++i) {
    n *= static_cast<std::uint64_t>(dims[i]);
  }
  return dims.ndims() == 0 ? 0 : n;
}

int home_pe(const CollectionInfo& info, const Index& idx, int num_pes) {
  switch (info.kind) {
    case CollectionKind::Singleton:
      return info.fixed_pe;
    case CollectionKind::Group:
      return idx[0];
    case CollectionKind::Array:
    case CollectionKind::SparseArray:
      return lookup_map(info.map_name)(idx, info, num_pes);
  }
  return 0;
}

}  // namespace cx
