#pragma once
// Internal interface between the header-only proxy/creation templates and
// the Runtime (implemented in runtime.cpp). Applications use proxy.hpp
// and charm.hpp, never this header directly.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/ids.hpp"
#include "core/index.hpp"
#include "core/reduction.hpp"

namespace cx {

class Chare;

namespace detail {

/// Arguments in transit: the live tuple plus a PUP traversal used only
/// if the message leaves the process-local fast path (paper §II-D:
/// same-PE sends pass arguments by reference and skip serialization
/// entirely). The traversal lets the wire builder size and pack the
/// tuple — including cpy::Value ndarrays, whose pup is one contiguous
/// bytes() call — directly into the message buffer.
struct ArgsCarrier {
  std::shared_ptr<void> tuple;
  void (*pup)(void* tuple, pup::Er& p) = nullptr;
};

/// Enable/disable the same-PE by-reference fast path (paper §II-D);
/// disabling forces serialization on every send (ablation studies).
bool local_fastpath_enabled() noexcept;
void set_local_fastpath(bool on) noexcept;

/// Point-to-point entry-method send. `nominal_bytes`, when nonzero, is
/// the payload size charged to cost models regardless of actual size.
void proxy_send(CollectionId coll, const Index& idx, EpId ep,
                ArgsCarrier args, const ReplyTo& reply,
                std::uint64_t nominal_bytes = 0);

/// Broadcast an entry method to every element of a collection. If `reply`
/// is valid it is fulfilled (empty) once every element has executed.
void proxy_broadcast(CollectionId coll, EpId ep, ArgsCarrier args,
                     const ReplyTo& reply);

/// Create a collection; returns its id immediately (creation is async).
CollectionId create_collection(CollectionKind kind, const Index& dims,
                               int ndims, FactoryId ctor,
                               std::vector<std::byte> ctor_args,
                               const std::string& map_name, int fixed_pe);

/// Insert one element into a sparse array (paper §II-G: ckInsert).
void sparse_insert(CollectionId coll, const Index& idx, FactoryId ctor,
                   std::vector<std::byte> ctor_args, int on_pe);

/// Finish sparse insertion (ckDoneInserting): waits (via quiescence) for
/// all in-flight inserts, establishes the final size on every PE, then
/// fulfills `reply`.
void sparse_done_inserting(CollectionId coll, const ReplyTo& reply);

ReplyTo make_future_slot();

/// Contribute packed data to the current reduction of `chare`'s
/// collection (paper §II-F).
void contribute_bytes(Chare& chare, std::vector<std::byte> value,
                      CombineId combiner, const Callback& target);

// ---- sections (sections.cpp) ---------------------------------------------

/// What a SectionProxy needs to operate: the id, the deduplicated
/// member count, and the section tree's root PE (first involved PE).
struct SectionHandle {
  std::uint64_t id = 0;
  std::uint64_t size = 0;
  std::int32_t root = -1;
};

/// Build a section over `members` of `coll`: allocates the id, computes
/// the spanning tree over the members' home PEs, and ships the spec
/// down that tree. Returns immediately (construction is async; early
/// multicasts/contributions stash at nodes that don't know the section
/// yet).
SectionHandle section_create(CollectionId coll, std::vector<Index> members);

/// Multicast an entry method over a section. If `reply` is valid it is
/// fulfilled (empty) once every member has executed.
void section_broadcast(std::uint64_t sect, CollectionId coll,
                       std::int32_t root, EpId ep, ArgsCarrier args,
                       const ReplyTo& reply);

/// Contribute packed data to a section-scoped reduction. The fragment
/// routes through the element's home PE — its delegate node in the
/// section tree — so it works unchanged from a migrated element.
void section_contribute_bytes(Chare& chare, std::uint64_t sect,
                              std::vector<std::byte> value,
                              CombineId combiner, const Callback& target);

/// Argument-tuple PUP traversal instantiated per tuple type.
template <typename Tuple>
void pup_tuple(void* t, pup::Er& p) {
  p | *static_cast<Tuple*>(t);
}

}  // namespace detail
}  // namespace cx
