// Chare-array sections: first-class handles over arbitrary index
// subsets of a collection. A section's spec (sorted members + arity) is
// the single source of truth — every involved PE derives the identical
// k-ary spanning tree over the members' home PEs, so no per-edge
// routing state ever travels. Multicasts descend the tree's edges;
// section-scoped reductions climb the same edges. Migration never
// reshapes the tree: a member's home PE stays its delegate node, which
// routes deliveries through the location manager (overrides) and keeps
// accepting the member's contributions wherever it physically lives.

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/runtime_impl.hpp"

namespace cx {

namespace {

void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
  c.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

// ---- spec-derived topology ------------------------------------------------

tree::SpanningTree Runtime::Impl::section_tree(const SectionSpec& spec) const {
  const auto& info = pes[static_cast<std::size_t>(machine->current_pe())]
                         ->colls.at(spec.coll)
                         .info;
  std::vector<int> hosts;
  hosts.reserve(spec.members.size());
  for (const Index& m : spec.members) hosts.push_back(home_pe(info, m, P));
  return tree::make_spanning_tree(std::move(hosts), spec.arity);
}

std::uint64_t Runtime::Impl::sect_subtree_expected(
    const SectionSpec& spec) const {
  const tree::SpanningTree t = section_tree(spec);
  const auto& info = pes[static_cast<std::size_t>(machine->current_pe())]
                         ->colls.at(spec.coll)
                         .info;
  std::vector<std::uint64_t> weight(static_cast<std::size_t>(t.size()), 0);
  for (const Index& m : spec.members) {
    const int pos = t.pos_of(home_pe(info, m, P));
    weight[static_cast<std::size_t>(pos)]++;
  }
  return tree::kary_subtree_sum(t.pos_of(machine->current_pe()), t.size(),
                                t.arity, weight);
}

SectMeta& Runtime::Impl::install_section(const SectionSpec& spec) {
  auto& ps = me();
  auto [it, fresh] = ps.sections.try_emplace(spec.id);
  SectMeta& sm = it->second;
  if (fresh) {
    sm.spec = spec;
    const auto& info = ps.colls.at(spec.coll).info;
    for (const Index& m : spec.members) {
      if (home_pe(info, m, P) == mype()) sm.home_members.push_back(m);
    }
  }
  // Flush operations that raced ahead of the build (idempotent).
  const auto st = ps.sect_stash.find(spec.id);
  if (st != ps.sect_stash.end()) {
    auto msgs = std::move(st->second);
    ps.sect_stash.erase(st);
    for (auto& m : msgs) {
      m->dst_pe = mype();
      rt_send(std::move(m));  // re-dispatch through the scheduler
    }
  }
  return sm;
}

void Runtime::Impl::sect_refresh_routes(SectMeta& sm, CollMeta& cm) {
  if (sm.routes_built && sm.routes_epoch == sm.epoch) return;
  const bool repair = sm.routes_built;
  sm.present.clear();
  sm.away.clear();
  for (const Index& m : sm.home_members) {
    if (cm.elements.count(m) != 0) {
      sm.present.push_back(m);
    } else {
      sm.away.push_back(m);
    }
  }
  sm.routes_built = true;
  sm.routes_epoch = sm.epoch;
  if (repair) bump(cx::trace::detail::g_section.tree_repairs);
}

void Runtime::Impl::invalidate_section_routes(CollectionId coll,
                                              const Index& idx) {
  for (auto& [id, sm] : me().sections) {
    (void)id;
    if (sm.spec.coll != coll) continue;
    if (std::binary_search(sm.spec.members.begin(), sm.spec.members.end(),
                           idx)) {
      sm.epoch++;
    }
  }
}

// ---- handlers -------------------------------------------------------------

void Runtime::Impl::on_sect_build(MessagePtr msg) {
  me().processed++;
  SectBuildHeader h = pup::from_bytes<SectBuildHeader>(msg->data);
  auto& ps = me();
  if (ps.colls.find(h.spec.coll) == ps.colls.end()) {
    stash_msg(h.spec.coll, std::move(msg));
    return;
  }
  install_section(h.spec);
  const tree::SpanningTree t = section_tree(h.spec);
  if (!h.down && mype() != t.root()) {
    // Initial self-routed message on the creator: detour to the root,
    // which starts the descent proper.
    SectBuildHeader h2 = h;
    h2.down = true;
    rt_send(wire::make_msg(h_sect_build, t.root(), h2));
    return;
  }
  std::vector<int> kids;
  t.children_of(mype(), kids);
  SectBuildHeader h2 = h;
  h2.down = true;
  for (const int k : kids) rt_send(wire::make_msg(h_sect_build, k, h2));
}

void Runtime::Impl::on_sect_bcast(MessagePtr msg) {
  me().processed++;
  std::size_t off = 0;
  const SectBcastHeader h =
      wire::read_header<SectBcastHeader>(msg->data, &off);
  auto& ps = me();
  const auto sit = ps.sections.find(h.sect);
  if (sit == ps.sections.end()) {
    ps.sect_stash[h.sect].push_back(std::move(msg));
    return;
  }
  SectMeta& sm = sit->second;
  CollMeta& cm = ps.colls.at(h.coll);
  const tree::SpanningTree t = section_tree(sm.spec);
  const std::byte* body = msg->data.data() + off;
  const std::size_t body_len = msg->data.size() - off;
  if (!h.down && mype() != t.root()) {
    // Initiator-side hop from a PE that is not the tree root (a stale
    // proxy root, or a creator that never hosted a member).
    SectBcastHeader h2 = h;
    h2.down = true;
    rt_send(wire::make_msg(h_sect_bcast, t.root(), h2, body, body_len));
    return;
  }
  // Descend: forward to this node's children in the section tree.
  std::vector<int> kids;
  t.children_of(mype(), kids);
  for (const int k : kids) {
    if (h.down) {
      rt_send(wire::clone_payload(h_sect_bcast, k, msg->data));
    } else {
      SectBcastHeader h2 = h;
      h2.down = true;
      rt_send(wire::make_msg(h_sect_bcast, k, h2, body, body_len));
    }
  }
  if (t.pos_of(mype()) == 0) {
    // Root bookkeeping. For a proper subset, tell the collection's
    // completion PE how many delivery credits finish this broadcast;
    // all-members sections ride the unchanged info.size path, which
    // keeps the two completion sources race-free.
    bool expect = false;
    if (h.reply.valid() && sm.spec.members.size() != cm.info.size) {
      expect = true;
      SectExpectHeader eh;
      eh.coll = h.coll;
      eh.reply = h.reply;
      eh.expected = sm.spec.members.size();
      rt_send(wire::make_msg(h_sect_expect, static_cast<int>(h.coll) % P,
                             eh));
    }
    // Nominal envelope accounting vs a broadcast+filter over the whole
    // collection (initial hop + binomial forwards + per-element credit).
    const std::uint64_t credits =
        h.reply.valid() ? sm.spec.members.size() : 0;
    const std::uint64_t naive =
        1 + static_cast<std::uint64_t>(P - 1) +
        (h.reply.valid() ? cm.info.size : 0);
    const std::uint64_t actual = 1 +
                                 static_cast<std::uint64_t>(t.size() - 1) +
                                 credits + (expect ? 1 : 0);
    bump(cx::trace::detail::g_section.mcast_envelopes, actual);
    if (naive > actual) {
      bump(cx::trace::detail::g_section.envelopes_saved, naive - actual);
    }
  }
  sect_refresh_routes(sm, cm);
  const EpInfo& info = Registry::instance().ep(h.ep);
  // Route a member's delivery through the location manager as packed
  // bytes (used for migrated-away members, and as the fallback when a
  // present member moves mid-loop).
  auto route_away = [&](const Index& idx) {
    EntryHeader eh;
    eh.coll = h.coll;
    eh.idx = idx;
    eh.ep = h.ep;
    eh.bcast_done = h.reply;
    route_entry_msg(cm, idx,
                    wire::make_msg(h_entry, mype(), eh, body, body_len));
  };
  // Deliver to each present member with a freshly unpacked tuple.
  const std::vector<Index> present = sm.present;
  for (const Index& idx : present) {
    if (Chare* obj = find_local(cm, idx)) {
      pup::Unpacker ue(msg->data.data(), msg->data.size());
      SectBcastHeader dummy;
      ue | dummy;
      auto tuple = info.unpack(ue);
      deliver(obj, h.ep, std::move(tuple), {}, h.reply);
    } else {
      route_away(idx);
    }
  }
  for (const Index& idx : sm.away) route_away(idx);
}

void Runtime::Impl::on_sect_reduce(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  SectReduceHeader h;
  u | h;
  auto& ps = me();
  const auto sit = ps.sections.find(h.sect);
  if (sit == ps.sections.end()) {
    ps.sect_stash[h.sect].push_back(std::move(msg));
    return;
  }
  SectMeta& sm = sit->second;
  if (h.count == 1 &&
      !std::binary_search(sm.spec.members.begin(), sm.spec.members.end(),
                          h.contributor)) {
    throw std::logic_error("section reduction: element " +
                           h.contributor.to_string() +
                           " contributed to a section it is not a member of");
  }
  std::vector<std::byte> value(
      msg->data.begin() + static_cast<long>(u.offset()), msg->data.end());
  auto& rs = ps.sect_red[{h.sect, h.seq}];
  rs.count += h.count;
  if (h.combiner != kNoCombine) {
    if (!rs.has_acc) {
      rs.acc = std::move(value);
      rs.has_acc = true;
      rs.combiner = h.combiner;
    } else {
      rs.acc = checked_combine(h.combiner, rs.acc, value, h.coll,
                               h.contributor);
    }
  }
  if (h.cb.kind != Callback::Kind::Ignore) rs.cb = h.cb;
  // This node may finish as soon as its whole subtree has reported —
  // derived from the spec alone, so it stays correct across migration
  // (contributions always route via home PEs, the tree's node set).
  if (rs.count < sect_subtree_expected(sm.spec)) return;
  auto node = ps.sect_red.extract({h.sect, h.seq});
  RedState& done = node.mapped();
  const tree::SpanningTree t = section_tree(sm.spec);
  if (t.pos_of(mype()) == 0) {
    bump(cx::trace::detail::g_section.reductions_done);
    deliver_callback(done.cb, std::move(done.acc));
    return;
  }
  bump(cx::trace::detail::g_section.red_fragments);
  SectReduceHeader up = h;
  up.count = done.count;
  up.cb = done.cb;
  rt_send(wire::make_msg(h_sect_reduce, t.parent_of(mype()), up, done.acc));
}

void Runtime::Impl::on_sect_expect(MessagePtr msg) {
  me().processed++;
  const SectExpectHeader h = pup::from_bytes<SectExpectHeader>(msg->data);
  auto& ps = me();
  const auto key = std::make_pair(h.reply.pe, h.reply.fid);
  ps.bcast_expect[key] = h.expected;
  // The credits may all have landed before the expectation did.
  const auto cit = ps.bcast_done_root.find(key);
  if (cit != ps.bcast_done_root.end() && cit->second >= h.expected) {
    ps.bcast_done_root.erase(cit);
    ps.bcast_expect.erase(key);
    send_future_bytes(h.reply, {});
  }
}

// ---- bridge from the header-only templates --------------------------------

namespace detail {

SectionHandle section_create(CollectionId coll, std::vector<Index> members) {
  auto& I = Runtime::current().impl();
  if (I.mype() < 0) {
    throw std::logic_error("sections must be created from a PE context");
  }
  if (members.empty()) {
    throw std::invalid_argument("section over an empty member set");
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  auto& ps = I.me();
  SectionSpec spec;
  spec.id = (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(I.mype()))
             << 32) |
            ++ps.next_sect;
  spec.coll = coll;
  spec.members = std::move(members);
  spec.arity = tree::section_arity();
  SectionHandle handle;
  handle.id = spec.id;
  handle.size = spec.members.size();
  // The tree root is derivable only once the collection's creation
  // broadcast has landed here; until then the proxy routes through this
  // PE and the first hop detours to the real root.
  const auto cit = ps.colls.find(coll);
  if (cit != ps.colls.end()) {
    std::vector<int> hosts;
    hosts.reserve(spec.members.size());
    for (const Index& m : spec.members) {
      hosts.push_back(home_pe(cit->second.info, m, I.P));
    }
    handle.root = tree::make_spanning_tree(std::move(hosts), spec.arity)
                      .root();
  } else {
    handle.root = I.mype();
  }
  bump(cx::trace::detail::g_section.sections_built);
  SectBuildHeader bh;
  bh.spec = std::move(spec);
  I.rt_send(wire::make_msg(I.h_sect_build, I.mype(), bh));
  return handle;
}

void section_broadcast(std::uint64_t sect, CollectionId coll,
                       std::int32_t root, EpId ep, ArgsCarrier args,
                       const ReplyTo& reply) {
  auto& I = Runtime::current().impl();
  if (sect == 0 || root < 0) {
    throw std::logic_error("broadcast on an invalid section proxy");
  }
  bump(cx::trace::detail::g_section.mcasts);
  SectBcastHeader h;
  h.sect = sect;
  h.coll = coll;
  h.ep = ep;
  h.reply = reply;
  I.rt_send(wire::make_msg_pup(I.h_sect_bcast, root, h, [&](pup::Er& p) {
    args.pup(args.tuple.get(), p);
  }));
}

void section_contribute_bytes(Chare& chare, std::uint64_t sect,
                              std::vector<std::byte> value,
                              CombineId combiner, const Callback& target) {
  auto& I = Runtime::current().impl();
  if (sect == 0) {
    throw std::logic_error("contribute to an invalid section proxy");
  }
  bump(cx::trace::detail::g_section.contributions);
  SectReduceHeader h;
  h.sect = sect;
  h.coll = chare.collection();
  h.seq = I.next_sect_seq(chare, sect);
  h.combiner = combiner;
  h.cb = target;
  h.count = 1;
  h.contributor = chare.this_index();
  // Always via the home PE — the element's delegate node in the section
  // tree — so a migrated member's contribution needs no special path.
  const auto& info = I.me().colls.at(chare.collection()).info;
  const int home = home_pe(info, chare.this_index(), I.P);
  I.rt_send(wire::make_msg(I.h_sect_reduce, home, h, value));
}

}  // namespace detail
}  // namespace cx
