#pragma once
// Runtime — the orchestrator tying chares, proxies, reductions, futures,
// migration and load balancing to a Machine backend.
//
// Lifecycle (mirrors charm.start()/charm.exit() of the paper):
//
//   cx::RuntimeConfig cfg;
//   cfg.machine.num_pes = 8;
//   cx::Runtime rt(cfg);
//   rt.run([] {                 // entry point, threaded, on PE 0
//     auto g = cx::create_group<Worker>();
//     auto f = cx::make_future<double>();
//     ...
//     cx::exit();
//   });
//
// Exactly one Runtime may exist at a time (it installs itself as the
// process-current runtime, like the `charm` object of the paper).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/reduction.hpp"
#include "machine/machine.hpp"

namespace cx {

struct RuntimeConfig {
  cxm::MachineConfig machine;
  /// Strategy used when chares reach AtSync (see lb.hpp).
  std::string lb_strategy = "greedy";
  std::uint64_t seed = 1;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Run `entry` as a threaded entry point on PE 0; blocks until exit()
  /// (or, on the simulated backend, until all work drains).
  void run(std::function<void()> entry);

  /// Stop the runtime (charm.exit()). Callable from entry methods.
  void exit();

  [[nodiscard]] int num_pes() const noexcept;
  [[nodiscard]] int my_pe() const noexcept;
  /// Multi-process locality (SocketMachine backend): this process's
  /// rank and the job's rank count. 0 of 1 on single-process backends.
  [[nodiscard]] int my_rank() const noexcept;
  [[nodiscard]] int num_ranks() const noexcept;
  [[nodiscard]] double now() const;
  void compute(double seconds);
  void charge(double seconds);
  [[nodiscard]] bool is_simulated() const noexcept;

  /// Simulated makespan (max virtual time over PEs); only for Sim backend.
  [[nodiscard]] double sim_makespan() const;

  cxm::Machine& machine() noexcept;

  /// Deliver an empty value to `target` once no messages are in flight
  /// and no entry method is executing (quiescence detection).
  void start_quiescence(const Callback& target);

  /// Aggregate LB statistics (for tests, benches and EXPERIMENTS.md).
  struct LbStats {
    std::uint64_t rounds = 0;
    std::uint64_t migrations = 0;
    double last_imbalance_before = 0.0;
    double last_imbalance_after = 0.0;
  };
  [[nodiscard]] LbStats lb_stats() const;

  /// Total application messages sent so far (all PEs).
  [[nodiscard]] std::uint64_t messages_sent() const;

  static Runtime& current();
  static bool has_current() noexcept;

  struct Impl;  // internal; reachable from runtime.cpp free functions
  [[nodiscard]] Impl& impl() noexcept { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

// Free-function shorthands (the `charm` module surface of the paper).
inline int num_pes() { return Runtime::current().num_pes(); }
inline int my_pe() { return Runtime::current().my_pe(); }
inline int my_rank() { return Runtime::current().my_rank(); }
inline int num_ranks() { return Runtime::current().num_ranks(); }
inline double now() { return Runtime::current().now(); }
inline void compute(double s) { Runtime::current().compute(s); }
inline void charge(double s) { Runtime::current().charge(s); }
inline void exit() { Runtime::current().exit(); }

/// Run `fn` on the calling PE's scheduler after `delay_s` (wall clock on
/// the threaded backend, virtual time on the simulator). Uncounted —
/// like Future::get_for deadlines, an armed post never holds off
/// quiescence detection; a post still armed when the runtime exits is
/// dropped. Must be called from a PE context (entry method or fiber).
void post_after(double delay_s, std::function<void()> fn);

}  // namespace cx
