#pragma once
// Reductions (paper §II-F): asynchronous, multiple in flight, built-in
// and user-defined reducers, results deliverable to entry methods,
// broadcasts or futures.
//
// A reducer is a *combiner id* into a process-global registry of binary
// combine functions over packed values. Built-in reducers are obtained
// from lazily-registering templates:
//
//   cx::reducer::sum<double>()      cx::reducer::max<int>()
//   cx::reducer::sum<std::vector<double>>()   // element-wise, the NumPy case
//   cx::reducer::gather<T>()        // values sorted by element index
//   cx::reducer::none()             // empty reduction (barrier)
//
// Custom reducers: cx::add_reducer<T>(binary_fn) -> CombineId.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/index.hpp"
#include "pup/pup.hpp"

namespace cx {

using CombineId = std::uint32_t;
constexpr CombineId kNoCombine = 0xffffffffu;  ///< empty (barrier) reduction

/// Binary combine over packed values; must be associative+commutative.
using CombineFn =
    std::function<std::vector<std::byte>(const std::vector<std::byte>&,
                                         const std::vector<std::byte>&)>;

/// Process-global combiner registry. Backed by a deque so references
/// stay valid while other threads register combiners lazily.
class CombinerRegistry {
 public:
  static CombinerRegistry& instance();
  CombineId add(CombineFn fn);
  [[nodiscard]] const CombineFn& get(CombineId id) const;

 private:
  std::deque<CombineFn> fns_;
};

/// Register a typed binary reducer; `fn(T& acc, const T& x)` folds x into
/// acc. This is the user-defined reducer hook of paper §II-F1.
template <typename T, typename F>
CombineId add_reducer(F&& fn) {
  return CombinerRegistry::instance().add(
      [f = std::forward<F>(fn)](const std::vector<std::byte>& a,
                                const std::vector<std::byte>& b) {
        T ta = pup::from_bytes<T>(a);
        T tb = pup::from_bytes<T>(b);
        f(ta, tb);
        return pup::to_bytes(ta);
      });
}

namespace detail {

template <typename T, typename Op>
void apply_elementwise(T& a, const T& b, Op op) {
  op(a, b);
}

template <typename U, typename Op>
void apply_elementwise(std::vector<U>& a, const std::vector<U>& b, Op op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(
        "reduction: mismatched vector lengths (accumulator has " +
        std::to_string(a.size()) + " elements, contribution has " +
        std::to_string(b.size()) + ")");
  }
  for (std::size_t i = 0; i < a.size(); ++i) op(a[i], b[i]);
}

template <typename T, typename Op>
CombineId arithmetic_combiner();

// Combiner ids travel inside reduction fragments, so every SocketMachine
// rank must assign identical ids. As with ep_id (registry.hpp), these
// registrars pin registration to static-init time — ordered by the
// binary, not by which rank's control flow touches a reducer first.
template <typename T, typename Op>
struct CombinerAutoReg {
  CombinerAutoReg() { (void)arithmetic_combiner<T, Op>(); }
};
template <typename T, typename Op>
inline CombinerAutoReg<T, Op> combiner_auto_reg{};

template <typename T, typename Op>
CombineId arithmetic_combiner() {
  (void)&combiner_auto_reg<T, Op>;
  static const CombineId id = add_reducer<T>([](T& a, const T& b) {
    apply_elementwise(a, b, Op{});
  });
  return id;
}

struct SumOp {
  template <typename U>
  void operator()(U& a, const U& b) const {
    a += b;
  }
};
struct ProdOp {
  template <typename U>
  void operator()(U& a, const U& b) const {
    a *= b;
  }
};
struct MinOp {
  template <typename U>
  void operator()(U& a, const U& b) const {
    a = std::min(a, b);
  }
};
struct MaxOp {
  template <typename U>
  void operator()(U& a, const U& b) const {
    a = std::max(a, b);
  }
};
struct AndOp {
  template <typename U>
  void operator()(U& a, const U& b) const {
    a = a && b;
  }
};
struct OrOp {
  template <typename U>
  void operator()(U& a, const U& b) const {
    a = a || b;
  }
};

}  // namespace detail

/// Run a registered combiner and, if it throws std::invalid_argument
/// (e.g. apply_elementwise on mismatched vector lengths), rethrow with
/// the contributing element's collection and index attached. The fold
/// handlers route every combine through this so a bad contribution is
/// attributable instead of a bare "mismatched lengths".
inline std::vector<std::byte> checked_combine(CombineId combiner,
                                              const std::vector<std::byte>& acc,
                                              const std::vector<std::byte>& value,
                                              CollectionId coll,
                                              const Index& contributor) {
  try {
    return CombinerRegistry::instance().get(combiner)(acc, value);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(e.what()) + " [collection " +
                                std::to_string(coll) + ", contributing element " +
                                contributor.to_string() + "]");
  }
}

namespace reducer {

template <typename T>
CombineId sum() {
  return detail::arithmetic_combiner<T, detail::SumOp>();
}
template <typename T>
CombineId product() {
  return detail::arithmetic_combiner<T, detail::ProdOp>();
}
template <typename T>
CombineId min() {
  return detail::arithmetic_combiner<T, detail::MinOp>();
}
template <typename T>
CombineId max() {
  return detail::arithmetic_combiner<T, detail::MaxOp>();
}
template <typename T>
CombineId logical_and() {
  return detail::arithmetic_combiner<T, detail::AndOp>();
}
template <typename T>
CombineId logical_or() {
  return detail::arithmetic_combiner<T, detail::OrOp>();
}

template <typename T>
CombineId gather();

namespace detail {
template <typename T>
struct GatherAutoReg {
  GatherAutoReg() { (void)cx::reducer::gather<T>(); }
};
template <typename T>
inline GatherAutoReg<T> gather_auto_reg{};
}  // namespace detail

/// Gather: the target receives std::vector<std::pair<Index, T>> sorted by
/// index (CharmPy's gather returns contributions sorted by element index).
/// Registered at static init like the arithmetic combiners.
template <typename T>
CombineId gather() {
  (void)&detail::gather_auto_reg<T>;
  using Item = std::pair<Index, T>;
  static const CombineId id =
      add_reducer<std::vector<Item>>([](std::vector<Item>& a,
                                        const std::vector<Item>& b) {
        a.insert(a.end(), b.begin(), b.end());
        std::sort(a.begin(), a.end(), [](const Item& x, const Item& y) {
          return x.first < y.first;
        });
      });
  return id;
}

/// Empty reduction: pure synchronization (paper: data=None, reducer=None).
inline CombineId none() { return kNoCombine; }

}  // namespace reducer

// ---------------------------------------------------------------------------
// Callback: where a reduction result (or broadcast completion) goes.

struct Callback {
  enum class Kind : std::uint8_t {
    Ignore = 0,
    Future = 1,      ///< fulfill a future (paper §II-H3)
    Element = 2,     ///< invoke an entry method on one element
    Broadcast = 3,   ///< invoke an entry method on every element
    SparseCount = 4  ///< runtime-internal: finalize sparse insertion
  };

  Kind kind = Kind::Ignore;
  ReplyTo future;            // Kind::Future
  CollectionId coll = kInvalidCollection;  // Element/Broadcast
  Index idx;                 // Element
  EpId ep = 0;               // Element/Broadcast

  static Callback ignore() { return {}; }

  static Callback to_future(const ReplyTo& f) {
    Callback c;
    c.kind = Kind::Future;
    c.future = f;
    return c;
  }

  static Callback to_element(CollectionId coll, const Index& idx, EpId ep) {
    Callback c;
    c.kind = Kind::Element;
    c.coll = coll;
    c.idx = idx;
    c.ep = ep;
    return c;
  }

  static Callback to_broadcast(CollectionId coll, EpId ep) {
    Callback c;
    c.kind = Kind::Broadcast;
    c.coll = coll;
    c.ep = ep;
    return c;
  }

  void pup(pup::Er& p) {
    p | kind;
    p | future;
    p | coll;
    p | idx;
    p | ep;
  }
};

}  // namespace cx
