// Collectives and completion plumbing: broadcasts (binomial tree),
// reductions (paper §II-F), futures and callbacks, and the sparse-array
// size-establishment protocol (paper §II-G).

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/future.hpp"
#include "core/runtime_impl.hpp"

namespace cx {

// ---- futures / callbacks --------------------------------------------------

void Runtime::Impl::fulfill_future(FutureId fid,
                                   std::vector<std::byte>&& bytes) {
  auto& slot = me().futures[fid];
  slot.value = std::move(bytes);
  Fiber* f = slot.waiter;
  slot.waiter = nullptr;
  // Send the wake envelope even when no fiber is suspended right now
  // (f == nullptr makes the delivery a no-op): whether the consumer
  // happened to be between two timed waits when the value landed must
  // not change the counted-message ledger — the quiescence counters are
  // checkpointed, and the chaos tier compares them across runs.
  send_resume(f);
}

void Runtime::Impl::send_future_bytes(const ReplyTo& f,
                                      std::vector<std::byte>&& bytes) {
  if (!f.valid()) return;
  if (f.pe == mype()) {
    fulfill_future(f.fid, std::move(bytes));
    return;
  }
  FutureHeader h;
  h.fid = f.fid;
  rt_send(wire::make_msg(h_future, f.pe, h, bytes));
}

void Runtime::Impl::deliver_callback(const Callback& cb,
                                     std::vector<std::byte>&& bytes) {
  switch (cb.kind) {
    case Callback::Kind::Ignore:
      return;
    case Callback::Kind::Future:
      send_future_bytes(cb.future, std::move(bytes));
      return;
    case Callback::Kind::Element: {
      EntryHeader h;
      h.coll = cb.coll;
      h.idx = cb.idx;
      h.ep = cb.ep;
      rt_send(wire::make_msg(h_entry, mype(), h, bytes));
      return;
    }
    case Callback::Kind::Broadcast: {
      BcastHeader h;
      h.coll = cb.coll;
      h.ep = cb.ep;
      h.root = mype();
      rt_send(wire::make_msg(h_bcast, mype(), h, bytes));
      return;
    }
    case Callback::Kind::SparseCount: {
      // All inserts have landed (quiescence): count elements per PE.
      DoneInsertingHeader h;
      h.coll = cb.coll;
      h.root = mype();
      h.reply = cb.future;
      rt_send(wire::make_msg(h_done_inserting, mype(), h));
      return;
    }
  }
}

// ---- handlers -------------------------------------------------------------

void Runtime::Impl::on_bcast(MessagePtr msg) {
  me().processed++;
  std::size_t args_off = 0;
  const BcastHeader h = wire::read_header<BcastHeader>(msg->data, &args_off);
  auto& ps = me();
  const auto it = ps.colls.find(h.coll);
  if (h.root != -2) forward_tree(h_bcast, h.root, msg->data);
  if (it == ps.colls.end()) {
    // Keep local delivery for later; mark as forward-complete.
    BcastHeader h2 = h;
    h2.root = -2;
    stash_msg(h.coll,
              wire::make_msg(h_bcast, mype(), h2,
                             msg->data.data() + args_off,
                             msg->data.size() - args_off));
    return;
  }
  CollMeta& cm = it->second;
  const EpInfo& info = Registry::instance().ep(h.ep);
  // Deliver to each local element with a freshly unpacked argument tuple.
  std::vector<Chare*> local;
  local.reserve(cm.elements.size());
  for (auto& [idx, obj] : cm.elements) local.push_back(obj.get());
  for (Chare* obj : local) {
    pup::Unpacker ue(msg->data.data(), msg->data.size());
    BcastHeader dummy;
    ue | dummy;
    auto tuple = info.unpack(ue);
    deliver(obj, h.ep, std::move(tuple), {}, h.reply);
  }
}

void Runtime::Impl::on_bcast_done(MessagePtr msg) {
  me().processed++;
  BcastDoneHeader h = pup::from_bytes<BcastDoneHeader>(msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  const auto key = std::make_pair(h.reply.pe, h.reply.fid);
  auto& count = ps.bcast_done_root[key];
  count += h.count;
  // A proper-subset section multicast registers its own (smaller)
  // completion expectation; whole-collection broadcasts — and
  // all-members sections, which never register one — fire at info.size.
  const auto eit = ps.bcast_expect.find(key);
  const std::uint64_t expected =
      eit != ps.bcast_expect.end() ? eit->second : cit->second.info.size;
  if (count >= expected) {
    ps.bcast_done_root.erase(key);
    if (eit != ps.bcast_expect.end()) ps.bcast_expect.erase(eit);
    send_future_bytes(h.reply, {});
  }
}

void Runtime::Impl::on_reduce(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  ReduceHeader h;
  u | h;
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  std::vector<std::byte> value(msg->data.begin() + static_cast<long>(u.offset()),
                               msg->data.end());
  auto& rs = ps.red_root[{h.coll, h.red_no}];
  rs.count += h.count;
  if (h.combiner != kNoCombine) {
    if (!rs.has_acc) {
      rs.acc = std::move(value);
      rs.has_acc = true;
      rs.combiner = h.combiner;
    } else {
      rs.acc = checked_combine(h.combiner, rs.acc, value, h.coll,
                               h.contributor);
    }
  }
  if (h.cb.kind != Callback::Kind::Ignore) rs.cb = h.cb;
  const auto& info = cit->second.info;
  if (!info.inserting && rs.count >= info.size) {
    Callback cb = rs.cb;
    std::vector<std::byte> acc = std::move(rs.acc);
    ps.red_root.erase({h.coll, h.red_no});
    CX_TRACE_EVENT(mype(), machine->now(),
                   cx::trace::EventKind::RedDeliver, h.coll, h.red_no);
    deliver_callback(cb, std::move(acc));
  }
}

void Runtime::Impl::on_future(MessagePtr msg) {
  me().processed++;
  std::size_t off = 0;
  const FutureHeader h = wire::read_header<FutureHeader>(msg->data, &off);
  std::vector<std::byte> value(msg->data.begin() + static_cast<long>(off),
                               msg->data.end());
  fulfill_future(h.fid, std::move(value));
}

void Runtime::Impl::on_done_inserting(MessagePtr msg) {
  me().processed++;
  DoneInsertingHeader h = pup::from_bytes<DoneInsertingHeader>(msg->data);
  forward_tree(h_done_inserting, h.root, msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  const std::uint64_t n =
      cit == ps.colls.end() ? 0 : cit->second.elements.size();
  InsertCountHeader ch;
  ch.coll = h.coll;
  ch.count = n;
  ch.reply = h.reply;
  rt_send(wire::make_msg(h_insert_count, static_cast<int>(h.coll) % P, ch));
}

void Runtime::Impl::on_insert_count(MessagePtr msg) {
  me().processed++;
  InsertCountHeader h = pup::from_bytes<InsertCountHeader>(msg->data);
  auto& ps = me();
  auto& [total, reports] = ps.ins_count[h.coll];
  total += h.count;
  reports++;
  if (reports == P) {
    SetSizeHeader sh;
    sh.coll = h.coll;
    sh.size = total;
    sh.root = mype();
    sh.reply = h.reply;
    ps.ins_count.erase(h.coll);
    rt_send(wire::make_msg(h_set_size, mype(), sh));
  }
}

void Runtime::Impl::on_set_size(MessagePtr msg) {
  me().processed++;
  SetSizeHeader h = pup::from_bytes<SetSizeHeader>(msg->data);
  forward_tree(h_set_size, h.root, msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  cit->second.info.size = h.size;
  cit->second.info.inserting = false;
  SizeAckHeader ack;
  ack.coll = h.coll;
  ack.reply = h.reply;
  rt_send(wire::make_msg(h_size_ack, static_cast<int>(h.coll) % P, ack));
  // Reductions rooted here may now be complete.
  if (static_cast<int>(h.coll) % P == mype()) {
    std::vector<std::pair<CollectionId, std::uint32_t>> fire;
    for (auto& [key, rs] : ps.red_root) {
      if (key.first == h.coll && rs.count >= h.size) fire.push_back(key);
    }
    for (const auto& key : fire) {
      auto node = ps.red_root.extract(key);
      deliver_callback(node.mapped().cb, std::move(node.mapped().acc));
    }
  }
}

void Runtime::Impl::on_size_ack(MessagePtr msg) {
  me().processed++;
  SizeAckHeader h = pup::from_bytes<SizeAckHeader>(msg->data);
  auto& acks = me().size_acks[h.coll];
  if (++acks == P) {
    me().size_acks.erase(h.coll);
    send_future_bytes(h.reply, {});
  }
}

// ---- bridge from the header-only templates --------------------------------

namespace detail {

void reply_with_bytes(const ReplyTo& reply, std::vector<std::byte>&& bytes) {
  Runtime::current().impl().send_future_bytes(reply, std::move(bytes));
}

void proxy_broadcast(CollectionId coll, EpId ep, ArgsCarrier args,
                     const ReplyTo& reply) {
  auto& I = Runtime::current().impl();
  BcastHeader h;
  h.coll = coll;
  h.ep = ep;
  h.reply = reply;
  h.root = I.mype();
  I.rt_send(wire::make_msg_pup(I.h_bcast, I.mype(), h, [&](pup::Er& p) {
    args.pup(args.tuple.get(), p);
  }));
}

void sparse_done_inserting(CollectionId coll, const ReplyTo& reply) {
  // Finalizing the size is only meaningful once every in-flight insert
  // has landed; quiescence detection guarantees exactly that.
  Callback c;
  c.kind = Callback::Kind::SparseCount;
  c.coll = coll;
  c.future = reply;
  Runtime::current().start_quiescence(c);
}

void contribute_bytes(Chare& chare, std::vector<std::byte> value,
                      CombineId combiner, const Callback& target) {
  auto& I = Runtime::current().impl();
  ReduceHeader h;
  h.coll = chare.collection();
  h.red_no = I.next_red_no(chare);
  CX_TRACE_EVENT(I.mype(), I.machine->now(),
                 cx::trace::EventKind::RedContribute, h.coll, h.red_no);
  h.combiner = combiner;
  h.cb = target;
  h.count = 1;
  h.contributor = chare.this_index();
  I.rt_send(
      wire::make_msg(I.h_reduce, static_cast<int>(h.coll) % I.P, h, value));
}

ReplyTo make_future_slot() {
  auto& I = Runtime::current().impl();
  auto& ps = I.me();
  ReplyTo r;
  r.pe = I.mype();
  // Skip ids still occupied: after a restore rolls next_future back, a
  // slot with a suspended waiter may sit above the counter.
  do {
    r.fid = ++ps.next_future;
  } while (ps.futures.count(r.fid) != 0);
  return r;
}

std::vector<std::byte> future_get_bytes(const ReplyTo& f) {
  auto& I = Runtime::current().impl();
  if (f.pe != I.mype()) {
    throw std::logic_error("Future::get() must run on the creating PE");
  }
  for (;;) {
    auto& slot = I.me().futures[f.fid];
    if (slot.value.has_value()) return *slot.value;
    Fiber* cur = Fiber::current();
    if (cur == nullptr) {
      throw std::logic_error(
          "Future::get() requires a threaded entry method");
    }
    slot.waiter = cur;
    Fiber::yield();
  }
}

std::optional<std::vector<std::byte>> future_get_bytes_for(const ReplyTo& f,
                                                           double timeout_s) {
  auto& I = Runtime::current().impl();
  if (f.pe != I.mype()) {
    throw std::logic_error("Future::get_for() must run on the creating PE");
  }
  {
    auto& slot = I.me().futures[f.fid];
    if (slot.value.has_value()) return *slot.value;
  }
  Fiber* cur = Fiber::current();
  if (cur == nullptr) {
    throw std::logic_error(
        "Future::get_for() requires a threaded entry method");
  }
  // Arm a deadline: an uncounted self-timer delivered via send_after.
  auto& ps = I.me();
  const std::uint64_t token = ++ps.next_timer_token;
  ps.timer_waiters[token] = cur;
  {
    LocalEnvelope* env = acquire_envelope();
    env->kind = LocalEnvelope::Kind::Timer;
    env->timer_token = token;
    I.machine->send_after(I.wrap_local(env, I.mype()), timeout_s);
  }
  for (;;) {
    {
      // Re-acquire the slot each pass: the map may rehash while we
      // are suspended (same discipline as future_get_bytes).
      auto& slot = I.me().futures[f.fid];
      if (slot.value.has_value()) {
        // Disarm: the timer event may still fire, but its token lookup
        // will miss and the delivery no-ops.
        I.me().timer_waiters.erase(token);
        return *slot.value;
      }
      slot.waiter = cur;
    }
    Fiber::yield();
    if (I.me().timer_waiters.count(token) == 0) {
      // The deadline fired (it erased its own token before resuming us).
      auto& slot = I.me().futures[f.fid];
      if (slot.value.has_value()) return *slot.value;  // lost race: value won
      // Timed out: drop the empty slot entirely. A later fulfill
      // recreates it value-first (so a retried get_for still sees it),
      // and a waiter slot left behind would outlive a restore's
      // next_future rollback and make post-rollback make_future_slot
      // skip an id a fault-free run hands out — fids are pupped inside
      // callbacks, so that skew shows up in checkpoint digests.
      I.me().futures.erase(f.fid);
      return std::nullopt;
    }
  }
}

bool future_ready(const ReplyTo& f) {
  auto& I = Runtime::current().impl();
  if (f.pe != I.mype()) return false;
  const auto it = I.me().futures.find(f.fid);
  return it != I.me().futures.end() && it->second.value.has_value();
}

void future_send_bytes(const ReplyTo& f, std::vector<std::byte>&& bytes) {
  Runtime::current().impl().send_future_bytes(f, std::move(bytes));
}

}  // namespace detail
}  // namespace cx
