// Location management: routing to moved elements, element
// construction, creation broadcasts, sparse insertion placement, and
// migration (paper §II-C/§II-G).

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace cx {

// ---- routing --------------------------------------------------------------

/// Route a fully-formed entry message (h_entry payload). Called on a PE
/// that knows the collection but does not host the element.
void Runtime::Impl::route_entry_msg(CollMeta& cm, const Index& idx,
                                    MessagePtr msg) {
  const auto ov = cm.overrides.find(idx);
  int dst;
  if (ov != cm.overrides.end()) {
    dst = ov->second;
  } else {
    const int home = home_pe(cm.info, idx, P);
    if (home == mype()) {
      // I'm the home and have no forwarding info: the element does not
      // exist yet (creation/insertion in flight). Buffer until it does.
      cm.pending[idx].push_back(std::move(msg));
      return;
    }
    dst = home;
  }
  msg->dst_pe = dst;
  rt_send(std::move(msg));
}

void Runtime::Impl::flush_pending(CollMeta& cm, const Index& idx) {
  const auto it = cm.pending.find(idx);
  if (it == cm.pending.end()) return;
  auto msgs = std::move(it->second);
  cm.pending.erase(it);
  for (auto& m : msgs) {
    m->dst_pe = mype();
    rt_send(std::move(m));  // re-dispatch through the scheduler
  }
}

void Runtime::Impl::flush_stash(CollectionId coll) {
  auto& ps = me();
  const auto it = ps.stash.find(coll);
  if (it == ps.stash.end()) return;
  auto msgs = std::move(it->second);
  ps.stash.erase(it);
  for (auto& m : msgs) {
    m->dst_pe = mype();
    rt_send(std::move(m));
  }
}

// ---- element construction -------------------------------------------------

Chare* Runtime::Impl::construct_element(CollMeta& cm, const Index& idx) {
  staged_coll() = cm.info.id;
  staged_idx() = idx;
  const auto& fac = Registry::instance().factory(cm.info.ctor);
  Chare* obj = fac.construct(cm.info.ctor_args.data(),
                             cm.info.ctor_args.size());
  staged_coll() = kInvalidCollection;
  cm.elements[idx].reset(obj);
  flush_pending(cm, idx);
  return obj;
}

// ---- migration ------------------------------------------------------------

void Runtime::Impl::do_migrate(Chare* obj, int to_pe, bool for_lb) {
  const CollectionId coll = obj->coll_;
  const Index idx = obj->idx_;
  auto& cm = me().colls.at(coll);
  if (to_pe == mype()) {
    if (for_lb) {
      LbAckHeader h;
      h.coll = coll;
      rt_send(wire::make_msg(h_lb_ack, 0, h));
    }
    return;
  }
  if (obj->active_fibers_ > 0) {
    CX_LOG_ERROR("cannot migrate chare ", idx.to_string(),
                 " with suspended threaded entry methods");
    throw std::logic_error("migrate with active threaded entry methods");
  }
  // Re-route when-buffered deliveries to the new location, preserving
  // arrival order (they re-enter deliver() there and are re-tested
  // against a fresh dirty clock).
  obj->buffered_.for_each_in_order([&](PendingInvoke& pi) {
    const EpInfo& info = Registry::instance().ep(pi.ep);
    EntryHeader eh;
    eh.coll = coll;
    eh.idx = idx;
    eh.ep = pi.ep;
    eh.reply = pi.reply;
    eh.bcast_done = pi.bcast_done;
    rt_send(wire::make_msg_pup(h_entry, to_pe, eh, [&](pup::Er& p) {
      info.pup_args(pi.args.get(), p);
    }));
  });
  obj->buffered_.clear();
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::MigrateOut,
                 coll, static_cast<std::uint64_t>(to_pe));
  // Serialize user + runtime state straight into the outgoing buffer.
  MigrateHeader mh;
  mh.coll = coll;
  mh.idx = idx;
  mh.red_no = obj->red_no_;
  mh.for_lb = for_lb;
  mh.sect_seq = obj->sect_seq_;
  auto out = wire::make_msg_pup(h_migrate, to_pe, mh,
                                [&](pup::Er& p) { obj->pup(p); });
  // Remove locally, install forwarder, update the home PE.
  cm.elements.erase(idx);
  cm.overrides[idx] = to_pe;
  // Any section counting this element among its local members must
  // re-derive its delivery split: bump the epoch, repair lazily.
  invalidate_section_routes(coll, idx);
  const int home = home_pe(cm.info, idx, P);
  if (home != mype()) {
    LocUpdateHeader lh;
    lh.coll = coll;
    lh.idx = idx;
    lh.pe = to_pe;
    rt_send(wire::make_msg(h_loc, home, lh));
  }
  rt_send(std::move(out));
}

// ---- handlers -------------------------------------------------------------

void Runtime::Impl::on_create(MessagePtr msg) {
  me().processed++;
  CreateHeader h = pup::from_bytes<CreateHeader>(msg->data);
  // Forward down the creation tree first.
  forward_tree(h_create, h.root, msg->data);
  auto& cm = me().colls[h.info.id];
  cm.info = h.info;
  switch (h.info.kind) {
    case CollectionKind::Singleton:
      if (h.info.fixed_pe == mype()) construct_element(cm, Index(0));
      break;
    case CollectionKind::Group:
      construct_element(cm, Index(mype()));
      break;
    case CollectionKind::Array:
      for_each_local_index(h.info,
                           [&](const Index& idx) { construct_element(cm, idx); });
      break;
    case CollectionKind::SparseArray:
      break;
  }
  flush_stash(h.info.id);
}

void Runtime::Impl::on_migrate(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  MigrateHeader h;
  u | h;
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = cit->second;
  const auto& fac = Registry::instance().factory(cm.info.ctor);
  if (fac.construct_default == nullptr) {
    CX_LOG_ERROR("chare type of collection ", h.coll,
                 " is not default-constructible; cannot migrate");
    throw std::logic_error("migration requires default-constructible chare");
  }
  staged_coll() = h.coll;
  staged_idx() = h.idx;
  Chare* obj = fac.construct_default();
  staged_coll() = kInvalidCollection;
  obj->pup(u);
  obj->red_no_ = h.red_no;
  obj->sect_seq_ = h.sect_seq;
  obj->load_ = 0.0;
  cm.elements[h.idx].reset(obj);
  cm.overrides.erase(h.idx);
  invalidate_section_routes(h.coll, h.idx);
  CX_TRACE_EVENT(mype(), machine->now(), cx::trace::EventKind::MigrateIn,
                 h.coll, 0);
  obj->on_migrated();
  flush_pending(cm, h.idx);
  if (h.for_lb) {
    LbAckHeader ah;
    ah.coll = h.coll;
    rt_send(wire::make_msg(h_lb_ack, 0, ah));
  }
  post_execute(obj);
}

void Runtime::Impl::on_loc(MessagePtr msg) {
  me().processed++;
  LocUpdateHeader h = pup::from_bytes<LocUpdateHeader>(msg->data);
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = cit->second;
  if (h.pe == mype()) {
    cm.overrides.erase(h.idx);
  } else {
    cm.overrides[h.idx] = h.pe;
  }
  // The home PE is the section tree node responsible for this member;
  // its cached delivery split just went stale.
  invalidate_section_routes(h.coll, h.idx);
  flush_pending(cm, h.idx);
}

void Runtime::Impl::on_insert(MessagePtr msg) {
  me().processed++;
  pup::Unpacker u(msg->data.data(), msg->data.size());
  InsertHeader h;
  u | h;
  auto& ps = me();
  const auto cit = ps.colls.find(h.coll);
  if (cit == ps.colls.end()) {
    stash_msg(h.coll, std::move(msg));
    return;
  }
  CollMeta& cm = cit->second;
  const std::byte* args = msg->data.data() + u.offset();
  const std::size_t args_len = msg->data.size() - u.offset();
  if (!h.routed) {
    // Placement phase: this PE now knows the collection; resolve the
    // destination and hand the element over for construction.
    const int home = home_pe(cm.info, h.idx, P);
    const int dst = h.on_pe >= 0 ? h.on_pe : home;
    InsertHeader out = h;
    out.routed = true;
    rt_send(wire::make_msg(h_insert, dst, out, args, args_len));
    if (dst != home) {
      LocUpdateHeader lh;
      lh.coll = h.coll;
      lh.idx = h.idx;
      lh.pe = dst;
      rt_send(wire::make_msg(h_loc, home, lh));
    }
    return;
  }
  staged_coll() = h.coll;
  staged_idx() = h.idx;
  const auto& fac = Registry::instance().factory(h.ctor);
  Chare* obj = fac.construct(args, args_len);
  staged_coll() = kInvalidCollection;
  cm.elements[h.idx].reset(obj);
  flush_pending(cm, h.idx);
  post_execute(obj);
}

// ---- creation / insertion (bridge from the header-only templates) ---------

namespace detail {

CollectionId create_collection(CollectionKind kind, const Index& dims,
                               int ndims, FactoryId ctor,
                               std::vector<std::byte> ctor_args,
                               const std::string& map_name, int fixed_pe) {
  auto& I = Runtime::current().impl();
  if (I.mype() < 0) {
    throw std::logic_error("collections must be created from a PE context");
  }
  const CollectionId id = I.next_coll.fetch_add(1);
  CollectionInfo info;
  info.id = id;
  info.kind = kind;
  info.dims = dims;
  info.ndims = ndims;
  info.ctor = ctor;
  info.ctor_args = std::move(ctor_args);
  info.map_name = map_name;
  switch (kind) {
    case CollectionKind::Singleton:
      info.size = 1;
      info.fixed_pe =
          fixed_pe >= 0
              ? fixed_pe
              : static_cast<int>((id * 2654435761u) %
                                 static_cast<std::uint32_t>(I.P));
      break;
    case CollectionKind::Group:
      info.size = static_cast<std::uint64_t>(I.P);
      break;
    case CollectionKind::Array:
      info.size = dense_size(dims);
      break;
    case CollectionKind::SparseArray:
      info.size = 0;
      info.inserting = true;
      break;
  }
  CreateHeader h;
  h.info = std::move(info);
  h.root = I.mype();
  I.rt_send(wire::make_msg(I.h_create, I.mype(), h));
  return id;
}

void sparse_insert(CollectionId coll, const Index& idx, FactoryId ctor,
                   std::vector<std::byte> ctor_args, int on_pe) {
  auto& I = Runtime::current().impl();
  // Route via a self-message: if the creation broadcast hasn't reached
  // this PE yet, the message is stashed and retried once it has.
  InsertHeader h;
  h.coll = coll;
  h.idx = idx;
  h.ctor = ctor;
  h.on_pe = on_pe;
  h.routed = false;
  I.rt_send(wire::make_msg(I.h_insert, I.mype(), h, ctor_args));
}

}  // namespace detail
}  // namespace cx
