#pragma once
// cx::when — dependency metadata for the condition-aware delivery engine
// (paper §II-E, §II-H2).
//
// The seed engine re-tested every `when`-buffered message after every
// entry method (O(n²) in the buffer depth). This header provides the
// vocabulary the scalable engine uses instead:
//
//   AttrKey    — an interned attribute name (FNV-1a hash; collisions
//                only ever cause spurious re-tests, never missed ones).
//   WhenDeps   — the set of `self.<attr>` names a condition reads,
//                extracted statically from the condition AST (model
//                layer) or declared by hand (set_when_deps<M>).
//   DirtyClock — a per-chare monotone clock; attribute writes mark
//                their key, and a buffered message is only re-tested
//                when one of its dependency keys was marked after the
//                message's last (failed) test.
//
// Conditions without dependency info (opaque C++ predicates) keep the
// seed's conservative behaviour: re-test after every entry method.
// The contract for tracked conditions: they read chare state only
// through attributes whose writes are marked (the dynamic layer marks
// every `self[...]` access), and treat message arguments as immutable
// payloads — exactly CharmPy's semantics.

#include <cstdint>
#include <deque>
#include <string_view>
#include <utility>
#include <vector>

namespace cx {

/// Interned attribute name used in dependency sets and dirty marks.
using AttrKey = std::uint64_t;

/// FNV-1a of the attribute name. A collision merges two attributes'
/// dirty marks, which is conservative (extra re-tests), never unsound.
constexpr AttrKey attr_key(std::string_view name) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// The chare attributes a `when` condition depends on. `known == false`
/// means static analysis could not bound the reads (e.g. the condition
/// uses bare `self` or a computed attribute name) and the engine must
/// fall back to re-testing after every entry method.
struct WhenDeps {
  bool known = false;
  std::vector<AttrKey> attrs;

  void add(AttrKey k) {
    for (const AttrKey a : attrs) {
      if (a == k) return;
    }
    attrs.push_back(k);
  }
};

/// Per-chare dirty clock: a monotone counter plus the last-marked tick of
/// every attribute written so far. Storage is a deque so the per-attribute
/// tick slots are address-stable — buffered messages cache direct slot
/// pointers for an O(1) "did my dependency change?" check.
class DirtyClock {
 public:
  /// Record a write of attribute `k` (bumps the clock).
  void mark(AttrKey k) {
    ++now_;
    for (auto& m : marks_) {
      if (m.first == k) {
        m.second = now_;
        return;
      }
    }
    marks_.emplace_back(k, now_);
  }

  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  /// Address-stable tick slot for `k` (created at 0 if never marked).
  [[nodiscard]] const std::uint64_t* slot_for(AttrKey k) {
    for (auto& m : marks_) {
      if (m.first == k) return &m.second;
    }
    marks_.emplace_back(k, 0);
    return &marks_.back().second;
  }

  /// True if any attribute in `deps` was marked after tick `since`.
  [[nodiscard]] bool any_since(const WhenDeps& deps,
                               std::uint64_t since) const noexcept {
    for (const AttrKey k : deps.attrs) {
      for (const auto& m : marks_) {
        if (m.first == k && m.second > since) return true;
      }
    }
    return false;
  }

 private:
  std::uint64_t now_ = 0;
  std::deque<std::pair<AttrKey, std::uint64_t>> marks_;
};

/// Engine mode switch (defined in delivery.cpp): dirty-dependency
/// filtering can be disabled — CHARMX_NO_WHEN_DIRTY, or
/// set_when_dirty_tracking(false) — to recover the seed's retry-all
/// loop for A/B measurements (bench/micro_when).
[[nodiscard]] bool when_dirty_tracking_enabled() noexcept;
void set_when_dirty_tracking(bool on) noexcept;

/// Global generation counter for when-condition *configuration* (as
/// opposed to chare state): bumped whenever a condition or dependency
/// set is attached, replaced or cleared. A chare whose buffer was
/// bucketed under an older epoch conservatively re-extracts every
/// buffered message's deps and re-tests it once (defined in
/// delivery.cpp).
[[nodiscard]] std::uint64_t when_config_epoch() noexcept;
void bump_when_config_epoch() noexcept;

}  // namespace cx
