#pragma once
// cx::wire block pool — per-PE free lists for message payload buffers
// and Message objects.
//
// Every heap block the wire layer hands out originates from ::operator
// new and is returned through free_block(), which recycles it into a
// thread-local free list when pooling is enabled (and the block's
// capacity is one of the pool's size classes) or releases it to the
// system otherwise. Because blocks always *originate* from the system
// allocator, the pool can be toggled at any time — --wire-pool=off
// simply stops recycling; blocks allocated while the pool was on are
// still freed correctly.
//
// Threading: each scheduler thread (one per PE on ThreadedMachine, the
// single DES thread on SimMachine, plus the driver thread) keeps
// thread-local free lists, so the fast path takes no lock. Messages
// routinely migrate threads — allocated on the sender's PE, freed on
// the receiver's — so each size class also has a mutex-protected
// global overflow list; thread caches refill from / spill to it in
// batches, which keeps ping-pong patterns from starving the sender.

#include <cstddef>
#include <cstdint>

namespace cxu {
class Options;
}

namespace cx::wire {

/// Payload size classes are powers of two from kMinBlock to kMaxBlock;
/// requests above kMaxBlock get an exact-size system allocation that is
/// never recycled.
inline constexpr std::size_t kMinBlock = 256;
inline constexpr std::size_t kMaxBlock = std::size_t{1} << 20;  // 1 MiB

/// Fixed block size backing pooled Message objects (Message::operator
/// new). Holds sizeof(Message) with headroom; static_assert'd at the
/// Message definition.
inline constexpr std::size_t kMsgBlock = 256;

/// Allocate a payload block of at least `size` bytes; `*cap` receives
/// the actual capacity (the size class, or `size` when above
/// kMaxBlock). Never returns nullptr for size > 0.
[[nodiscard]] std::byte* alloc_block(std::size_t size, std::size_t* cap);

/// Return a block obtained from alloc_block. `cap` must be the capacity
/// alloc_block reported for it.
void free_block(std::byte* p, std::size_t cap) noexcept;

/// Backing store for pooled Message objects (class-specific operator
/// new/delete on cxm::Message).
[[nodiscard]] void* alloc_msg(std::size_t size);
void free_msg(void* p, std::size_t size) noexcept;

/// Is recycling enabled? Defaults to on; seeded from CHARMX_WIRE_POOL
/// (0/off/false disables) and overridable per run via --wire-pool=on|off.
[[nodiscard]] bool pool_enabled() noexcept;
void set_pool_enabled(bool on) noexcept;

/// Shared on/off parser for the wire layer's toggles (CHARMX_WIRE_POOL,
/// CHARMX_WIRE_AGG, --wire-pool, --wire-agg): exactly "0", "off" or
/// "false" (case-insensitive) mean off, any other value means on, and
/// nullptr (unset) returns `unset`. The old env parser matched any
/// value starting with 'o' except "on" — "omit" disabled the pool while
/// the documented "false" did not.
[[nodiscard]] bool parse_toggle(const char* v, bool unset) noexcept;

/// Read --wire-pool=on|off (also plain --wire-pool for "on") plus the
/// --wire-agg* aggregation flags (wire/agg.hpp).
void configure_from_options(const cxu::Options& opt);

/// Release every cached block (thread-local caches of the calling
/// thread plus the global overflow lists) back to the system. Handy for
/// leak-checked tests; the runtime never needs to call it.
void drain_caches() noexcept;

}  // namespace cx::wire
