#pragma once
// cx::wire::Buffer — the byte storage behind every message payload.
//
// Small payloads (header + sub-cacheline body) live inline in the
// buffer itself (SBO), so they never touch the heap; larger payloads
// use pooled blocks from wire/pool.hpp. The byte contents are exactly
// what travels on the wire — storage strategy (inline vs pooled vs
// exact heap) never changes the bytes, which is what keeps
// --wire-pool=off and =on runs byte-identical.
//
// The API mirrors the parts of std::vector<std::byte> the runtime and
// tests use (data/size/empty/resize_discard/assignment from a vector,
// equality), so call sites that built payloads with pup::to_bytes keep
// compiling unchanged.

#include <cstddef>
#include <cstring>
#include <vector>

#include "wire/pool.hpp"

namespace cx::wire {

class Buffer {
 public:
  /// Inline capacity: sized so a packed entry-method header (~60 B)
  /// plus a cacheline of argument bytes fits without a heap block.
  static constexpr std::size_t kInlineCapacity = 128;

  Buffer() noexcept : ptr_(inline_) {}

  Buffer(const Buffer& o) : ptr_(inline_) { assign(o.ptr_, o.size_); }

  Buffer(Buffer&& o) noexcept : ptr_(inline_) { steal(o); }

  explicit Buffer(const std::vector<std::byte>& v) : ptr_(inline_) {
    assign(v.data(), v.size());
  }

  ~Buffer() { release(); }

  Buffer& operator=(const Buffer& o) {
    if (this != &o) assign(o.ptr_, o.size_);
    return *this;
  }

  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      release();
      ptr_ = inline_;
      cap_ = kInlineCapacity;
      size_ = 0;
      steal(o);
    }
    return *this;
  }

  /// Vector interop: copy the bytes in (tests build payloads with
  /// pup::to_bytes and assign them straight to Message::data).
  Buffer& operator=(const std::vector<std::byte>& v) {
    assign(v.data(), v.size());
    return *this;
  }

  [[nodiscard]] std::byte* data() noexcept { return ptr_; }
  [[nodiscard]] const std::byte* data() const noexcept { return ptr_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] bool is_inline() const noexcept { return ptr_ == inline_; }

  [[nodiscard]] std::byte* begin() noexcept { return ptr_; }
  [[nodiscard]] std::byte* end() noexcept { return ptr_ + size_; }
  [[nodiscard]] const std::byte* begin() const noexcept { return ptr_; }
  [[nodiscard]] const std::byte* end() const noexcept { return ptr_ + size_; }

  /// Set the size without preserving contents — the single-pass
  /// builder's allocation step (it knows the exact packed size up
  /// front and overwrites everything).
  void resize_discard(std::size_t n) {
    if (n > cap_) {
      release();
      std::size_t cap = 0;
      ptr_ = alloc_block(n, &cap);
      cap_ = cap;
    }
    size_ = n;
  }

  void assign(const std::byte* p, std::size_t n) {
    resize_discard(n);
    if (n > 0) std::memcpy(ptr_, p, n);
  }

  void clear() noexcept { size_ = 0; }

  [[nodiscard]] std::vector<std::byte> to_vector() const {
    return {ptr_, ptr_ + size_};
  }

  friend bool operator==(const Buffer& a, const Buffer& b) noexcept {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.ptr_, b.ptr_, a.size_) == 0);
  }
  friend bool operator!=(const Buffer& a, const Buffer& b) noexcept {
    return !(a == b);
  }

 private:
  void release() noexcept {
    if (ptr_ != inline_) free_block(ptr_, cap_);
  }

  /// Move o's contents into *this (which must be empty/inline): steal
  /// the heap block, or memcpy the inline bytes.
  void steal(Buffer& o) noexcept {
    if (o.ptr_ != o.inline_) {
      ptr_ = o.ptr_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.ptr_ = o.inline_;
      o.cap_ = kInlineCapacity;
      o.size_ = 0;
    } else {
      size_ = o.size_;
      if (size_ > 0) std::memcpy(inline_, o.inline_, size_);
      o.size_ = 0;
    }
  }

  std::byte* ptr_;
  std::size_t size_ = 0;
  std::size_t cap_ = kInlineCapacity;
  alignas(std::max_align_t) std::byte inline_[kInlineCapacity];
};

}  // namespace cx::wire
