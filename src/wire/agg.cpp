#include "wire/agg.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/options.hpp"
#include "wire/pool.hpp"

namespace cx::wire {

namespace {

using cx::trace::detail::g_wire;

std::atomic<bool> g_agg_enabled{
    parse_toggle(std::getenv("CHARMX_WIRE_AGG"), /*unset=*/false)};

std::mutex g_agg_cfg_mutex;
AggConfig g_agg_cfg;

void note_flush(AggFlush why) noexcept {
  switch (why) {
    case AggFlush::Bytes:
      g_wire.agg_flush_bytes.fetch_add(1, std::memory_order_relaxed);
      break;
    case AggFlush::Count:
      g_wire.agg_flush_count.fetch_add(1, std::memory_order_relaxed);
      break;
    case AggFlush::Idle:
      g_wire.agg_flush_idle.fetch_add(1, std::memory_order_relaxed);
      break;
    case AggFlush::Ordering:
      g_wire.agg_flush_order.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

}  // namespace

bool agg_enabled() noexcept {
  return g_agg_enabled.load(std::memory_order_relaxed);
}

void set_agg_enabled(bool on) noexcept {
  g_agg_enabled.store(on, std::memory_order_relaxed);
}

AggConfig agg_config() noexcept {
  std::lock_guard<std::mutex> lock(g_agg_cfg_mutex);
  return g_agg_cfg;
}

void set_agg_config(const AggConfig& cfg) noexcept {
  std::lock_guard<std::mutex> lock(g_agg_cfg_mutex);
  g_agg_cfg = cfg;
}

void configure_agg_from_options(const cxu::Options& opt) {
  if (opt.has("wire-agg")) {
    // Bare --wire-agg parses as "true"; =on/=off/=0/... via the shared
    // toggle parser.
    set_agg_enabled(
        parse_toggle(opt.get_string("wire-agg", "on").c_str(), true));
  }
  if (opt.has("wire-agg-bytes") || opt.has("wire-agg-count")) {
    AggConfig cfg = agg_config();
    cfg.flush_bytes = static_cast<std::size_t>(opt.get_int(
        "wire-agg-bytes", static_cast<long long>(cfg.flush_bytes)));
    cfg.flush_count = static_cast<std::uint32_t>(opt.get_int(
        "wire-agg-count", static_cast<long long>(cfg.flush_count)));
    set_agg_config(cfg);
  }
}

// ---- PeAggregator --------------------------------------------------------

bool PeAggregator::absorb(cxm::MessagePtr msg) {
  DstAgg& d = dsts_[msg->dst_pe];
  const int cls = class_of(msg->data.size());
  // Ordering rule: only one class may be open per destination. A class
  // switch seals the old batch first, so it travels ahead.
  if (d.active >= 0 && d.active != cls) seal(d, AggFlush::Ordering);

  ClassBuf& b = d.cls[cls];
  const std::size_t need = kAggRecordBytes + msg->data.size();
  if (b.msg == nullptr) {
    // Open a new batch: one pooled Message sized for the worst case up
    // front (header + flush threshold + one max-size record); sealing
    // shrinks it in place (resize_discard never reallocates downward).
    b.msg = std::make_unique<cxm::Message>();
    b.msg->dst_pe = msg->dst_pe;
    b.msg->wire_flags = cxm::kWireAggBatch;
    b.msg->data.resize_discard(kAggHeaderBytes + cfg_.flush_bytes +
                               kAggRecordBytes + cfg_.max_msg_bytes);
    b.bytes = kAggHeaderBytes;
    b.count = 0;
    if (d.active < 0) ++pending_dsts_;
    d.active = cls;
  }
  std::byte* out = b.msg->data.data() + b.bytes;
  const std::uint32_t handler = msg->handler;
  const auto len = static_cast<std::uint32_t>(msg->data.size());
  std::memcpy(out, &handler, sizeof(handler));
  std::memcpy(out + sizeof(handler), &len, sizeof(len));
  if (len > 0) std::memcpy(out + kAggRecordBytes, msg->data.data(), len);
  b.bytes += need;
  b.count += 1;
  g_wire.agg_msgs.fetch_add(1, std::memory_order_relaxed);
  msg.reset();  // absorbed; the pooled Message recycles immediately

  if (b.count >= cfg_.flush_count) {
    seal(d, AggFlush::Count);
  } else if (b.bytes >= cfg_.flush_bytes) {
    seal(d, AggFlush::Bytes);
  }
  // Arm a flush timer when the destination has an open batch that no
  // live timer covers (covers both a fresh open and the batch re-opened
  // by the ordering seal above).
  if (d.active >= 0 && d.armed_gen != d.gen) {
    d.armed_gen = d.gen;
    return true;
  }
  return false;
}

void PeAggregator::seal(DstAgg& d, AggFlush why) {
  if (d.active < 0) return;
  ClassBuf& b = d.cls[d.active];
  std::memcpy(b.msg->data.data(), &b.count, sizeof(b.count));
  b.msg->data.resize_discard(b.bytes);  // shrink: keeps block + contents
  g_wire.agg_batches.fetch_add(1, std::memory_order_relaxed);
  note_flush(why);
  ready_.push_back(std::move(b.msg));
  b.bytes = 0;
  b.count = 0;
  d.active = -1;
  d.gen += 1;
  --pending_dsts_;
}

void PeAggregator::flush_dst(int dst, AggFlush why) {
  auto it = dsts_.find(dst);
  if (it != dsts_.end()) seal(it->second, why);
}

void PeAggregator::flush_timer(int dst, std::uint64_t gen) {
  auto it = dsts_.find(dst);
  if (it != dsts_.end() && it->second.gen == gen) {
    seal(it->second, AggFlush::Idle);
  }
}

void PeAggregator::flush_all(AggFlush why) {
  if (pending_dsts_ == 0) return;
  for (auto& [dst, d] : dsts_) {
    (void)dst;
    seal(d, why);
  }
}

bool PeAggregator::dst_pending(int dst) const noexcept {
  const auto it = dsts_.find(dst);
  return it != dsts_.end() && it->second.active >= 0;
}

std::uint64_t PeAggregator::generation(int dst) const {
  const auto it = dsts_.find(dst);
  return it != dsts_.end() ? it->second.gen : 0;
}

cxm::MessagePtr PeAggregator::next_ready() {
  if (ready_head_ >= ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
    return nullptr;
  }
  return std::move(ready_[ready_head_++]);
}

}  // namespace cx::wire
