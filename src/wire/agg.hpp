#pragma once
// cx::wire sender-side message aggregation (TRAM-style).
//
// Fine-grained cross-PE sends pay a fixed per-message software cost
// (envelope hand-off, scheduler wakeup, cost-model alpha) that dwarfs
// the bytes moved. Following the topological aggregation module of
// Charm++/Charm4py (TRAM), each sending PE keeps per-(destination,
// size-class) coalescing buffers: small application messages are
// appended to an open batch instead of being handed to the transport,
// and the whole batch travels as ONE wire message that the receiver
// unpacks back into the normal delivery path.
//
// Batch wire format (native endianness, like every pup payload: since
// the SocketMachine backend, batches DO cross process boundaries — the
// connection handshake in src/net/frame.hpp rejects peers whose byte
// order or primitive widths differ, so same-ABI is guaranteed by the
// time a batch hits a socket):
//
//   u32 count | count x ( u32 handler | u32 len | len bytes )
//
// Flush policy — a batch is sealed and transmitted when:
//   * bytes   — appending would grow it past flush_bytes,
//   * count   — it holds flush_count messages,
//   * idle    — the owning scheduler runs out of work (ThreadedMachine)
//               or the per-destination flush timer fires (SimMachine's
//               deterministic DES equivalent),
//   * ordering— a message that cannot join the open batch (different
//               size class, oversized, or protocol traffic) is headed
//               to the same destination: the batch is sealed first so
//               it stays ahead of the bypassing message.
//
// Ordering argument: per destination at most ONE batch is open at a
// time (switching size class seals the old class first), every append
// preserves arrival order inside the batch, and any non-absorbed send
// to a destination seals that destination's open batch before itself
// entering the transport. Per sender->destination delivery order is
// therefore exactly the send order, across flush boundaries.
//
// Exemptions: quiescence-detection probes and cx::ft protocol traffic
// (seq/ack/retransmit, checkpoint blobs) must not sit in a buffer —
// they are marked kWireNoAgg / carry ft_flags and bypass aggregation
// entirely (flushing any open batch ahead of themselves). Batches
// themselves enroll in the cx::ft reliable-delivery protocol as single
// units, so a retransmitted batch is still a batch.
//
// The aggregator is per sending PE and is only ever touched by that
// PE's scheduler thread, so it needs no locks.

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "machine/message.hpp"
#include "trace/trace.hpp"
#include "wire/buffer.hpp"

namespace cxu {
class Options;
}

namespace cx::wire {

struct AggConfig {
  std::size_t max_msg_bytes = 1024;  ///< larger payloads bypass aggregation
  std::size_t flush_bytes = 8192;    ///< seal when a batch reaches this size
  std::uint32_t flush_count = 64;    ///< seal after this many messages
  double flush_delay_s = 1.0e-5;     ///< SimMachine flush-timer delay
};

/// Is aggregation enabled? Defaults to off; seeded from CHARMX_WIRE_AGG
/// and overridable per run via --wire-agg=on|off. Machines sample it at
/// construction, so toggle it before building a Runtime.
[[nodiscard]] bool agg_enabled() noexcept;
void set_agg_enabled(bool on) noexcept;

[[nodiscard]] AggConfig agg_config() noexcept;
void set_agg_config(const AggConfig& cfg) noexcept;

/// Read --wire-agg[=on|off], --wire-agg-bytes=<n>, --wire-agg-count=<n>.
/// Called from wire::configure_from_options (pool.cpp) so every bench /
/// example that wires up --wire-pool gets the aggregation flags too.
void configure_agg_from_options(const cxu::Options& opt);

// ---- batch wire format ---------------------------------------------------

inline constexpr std::size_t kAggHeaderBytes = 4;  ///< u32 message count
inline constexpr std::size_t kAggRecordBytes = 8;  ///< u32 handler + u32 len

/// Why a batch was sealed (trace counters).
enum class AggFlush : std::uint8_t { Bytes = 0, Count, Idle, Ordering };

/// Walk the records of a sealed batch payload in append order. `fn`
/// receives (handler, bytes, len). Returns false if the payload is
/// malformed (truncated record or count mismatch).
template <typename Fn>
bool for_each_agg_record(const Buffer& payload, Fn&& fn) {
  const std::byte* p = payload.data();
  const std::size_t n = payload.size();
  if (n < kAggHeaderBytes) return false;
  std::uint32_t count = 0;
  std::memcpy(&count, p, sizeof(count));
  std::size_t off = kAggHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (off + kAggRecordBytes > n) return false;
    std::uint32_t handler = 0, len = 0;
    std::memcpy(&handler, p + off, sizeof(handler));
    std::memcpy(&len, p + off + sizeof(handler), sizeof(len));
    off += kAggRecordBytes;
    if (off + len > n) return false;
    fn(handler, p + off, len);
    off += len;
  }
  return off == n;
}

/// May this message join a batch? Cross-PE, serialized, small, and not
/// protocol traffic (ft flags, wire flags, modeled size overrides).
[[nodiscard]] inline bool agg_eligible(const cxm::Message& m,
                                       const AggConfig& cfg) noexcept {
  return m.src_pe >= 0 && m.dst_pe != m.src_pe && m.local == nullptr &&
         m.ft_flags == 0 && m.wire_flags == 0 && m.size_override == 0 &&
         !m.data.empty() && m.data.size() <= cfg.max_msg_bytes;
}

/// One sending PE's coalescing state: per-destination open batches and
/// a FIFO of sealed batches the machine drains via next_ready().
class PeAggregator {
 public:
  explicit PeAggregator(const AggConfig& cfg) : cfg_(cfg) {
    if (cfg_.flush_count < 2) cfg_.flush_count = 2;
    if (cfg_.flush_bytes < cfg_.max_msg_bytes) {
      cfg_.flush_bytes = cfg_.max_msg_bytes;
    }
  }

  /// Append an eligible message (caller checked agg_eligible) to its
  /// destination's open batch, sealing as the flush policy dictates.
  /// Returns true when the machine should arm a flush timer for this
  /// destination (its open batch has no live timer yet); read
  /// generation() for the stamp.
  bool absorb(cxm::MessagePtr msg);

  /// Seal `dst`'s open batch (no-op when nothing is pending).
  void flush_dst(int dst, AggFlush why);

  /// Deterministic timer flush: seal `dst`'s open batch only if `gen`
  /// matches its arming generation (stale timers are no-ops).
  void flush_timer(int dst, std::uint64_t gen);

  /// Seal every open batch (scheduler-idle hook).
  void flush_all(AggFlush why);

  [[nodiscard]] bool dst_pending(int dst) const noexcept;
  [[nodiscard]] bool has_pending() const noexcept {
    return pending_dsts_ > 0;
  }

  /// Arming generation of `dst` (bumps whenever its open batch closes).
  [[nodiscard]] std::uint64_t generation(int dst) const;

  /// Pop the next sealed batch in seal order, or nullptr when drained.
  cxm::MessagePtr next_ready();

  [[nodiscard]] const AggConfig& config() const noexcept { return cfg_; }

 private:
  /// Size classes keep batches dense: tiny control-sized messages are
  /// not interleaved with near-max payloads. Switching class seals the
  /// open batch (the ordering rule), so only one is ever non-empty.
  static constexpr int kClasses = 3;
  [[nodiscard]] int class_of(std::size_t n) const noexcept {
    if (n <= 128) return 0;
    if (n <= 512) return 1;
    return 2;
  }

  struct ClassBuf {
    cxm::MessagePtr msg;  ///< open batch (header already reserved)
    std::size_t bytes = 0;
    std::uint32_t count = 0;
  };
  struct DstAgg {
    ClassBuf cls[kClasses];
    int active = -1;         ///< the (single) non-empty class, or -1
    std::uint64_t gen = 0;   ///< bumps on every seal
    std::uint64_t armed_gen = ~std::uint64_t{0};  ///< last timer stamp
  };

  void seal(DstAgg& d, AggFlush why);

  AggConfig cfg_;
  std::unordered_map<int, DstAgg> dsts_;
  std::vector<cxm::MessagePtr> ready_;
  std::size_t ready_head_ = 0;
  int pending_dsts_ = 0;
};

}  // namespace cx::wire
