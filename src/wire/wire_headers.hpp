#pragma once
// cx::wire — every header struct that travels between PEs, in one
// place. The runtime (core/), the fault-tolerance handlers (ft), the
// machine backends and the wire tests all consume this header; the
// packed layout is the PUP traversal order below, and the envelope
// builder (wire/envelope.hpp) packs a header immediately followed by
// its body bytes.
//
// Layout stability: these structs define the on-wire format. Changing
// field order or adding fields changes checkpoint digests and breaks
// mixed-version runs — extend via new headers, not by editing packed
// layouts casually.

#include <cstdint>
#include <vector>

#include "core/collection.hpp"
#include "core/ids.hpp"
#include "core/index.hpp"
#include "core/reduction.hpp"
#include "ft/fault.hpp"
#include "pup/pup.hpp"

namespace cx::wire {

/// Point-to-point entry-method invocation; body = packed argument tuple.
struct EntryHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  EpId ep = 0;
  ReplyTo reply;
  ReplyTo bcast_done;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | ep;
    p | reply;
    p | bcast_done;
  }
};

/// Broadcast along the binomial tree; body = packed argument tuple.
struct BcastHeader {
  CollectionId coll = kInvalidCollection;
  EpId ep = 0;
  ReplyTo reply;  ///< completion slot; doubles as the broadcast key
  std::int32_t root = 0;  ///< -2 = re-dispatched, do not forward again
  void pup(pup::Er& p) {
    p | coll;
    p | ep;
    p | reply;
    p | root;
  }
};

struct BcastDoneHeader {
  CollectionId coll = kInvalidCollection;
  ReplyTo reply;
  std::uint64_t count = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | reply;
    p | count;
  }
};

/// Reduction fragment; body = partial accumulator bytes.
struct ReduceHeader {
  CollectionId coll = kInvalidCollection;
  std::uint32_t red_no = 0;
  CombineId combiner = kNoCombine;
  Callback cb;
  std::uint64_t count = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | red_no;
    p | combiner;
    p | cb;
    p | count;
  }
};

/// Future fulfillment; body = packed value bytes.
struct FutureHeader {
  FutureId fid = 0;
  void pup(pup::Er& p) { p | fid; }
};

/// Element migration; body = the chare's pup()'d state.
struct MigrateHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::uint32_t red_no = 0;
  bool for_lb = false;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | red_no;
    p | for_lb;
  }
};

struct LocUpdateHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::int32_t pe = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | pe;
  }
};

/// Sparse-array insertion; body = packed constructor arguments.
struct InsertHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  FactoryId ctor = 0;
  std::int32_t on_pe = -1;  ///< requested placement (-1 = map decides)
  bool routed = false;      ///< placement resolved; construct on arrival
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | ctor;
    p | on_pe;
    p | routed;
  }
};

struct DoneInsertingHeader {
  CollectionId coll = kInvalidCollection;
  std::int32_t root = 0;
  ReplyTo reply;  ///< completion future of done_inserting()
  void pup(pup::Er& p) {
    p | coll;
    p | root;
    p | reply;
  }
};

struct InsertCountHeader {
  CollectionId coll = kInvalidCollection;
  std::uint64_t count = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | count;
    p | reply;
  }
};

struct SetSizeHeader {
  CollectionId coll = kInvalidCollection;
  std::uint64_t size = 0;
  std::int32_t root = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | size;
    p | root;
    p | reply;
  }
};

struct SizeAckHeader {
  CollectionId coll = kInvalidCollection;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | reply;
  }
};

struct LbCmdHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::int32_t to_pe = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | to_pe;
  }
};

struct LbAckHeader {
  CollectionId coll = kInvalidCollection;
  void pup(pup::Er& p) { p | coll; }
};

struct LbResumeHeader {
  CollectionId coll = kInvalidCollection;
  std::int32_t root = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | root;
  }
};

struct QdStartHeader {
  Callback cb;
  void pup(pup::Er& p) { p | cb; }
};

struct QdProbeHeader {
  std::uint64_t phase = 0;
  void pup(pup::Er& p) { p | phase; }
};

struct QdReplyHeader {
  std::uint64_t phase = 0;
  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  void pup(pup::Er& p) {
    p | phase;
    p | created;
    p | processed;
  }
};

/// Collection creation broadcast; body empty (the info rides inline).
struct CreateHeader {
  CollectionInfo info;
  std::int32_t root = 0;
  void pup(pup::Er& p) {
    p | info;
    p | root;
  }
};

// ---- cx::ft wire headers -------------------------------------------------

struct FtFailureHeader {
  cx::ft::PeFailure failure;
  void pup(pup::Er& p) { p | failure; }
};

struct CkptHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;  ///< resolved when all PEs have stored their blob
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct CkptAckHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct RestoreHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct RestoreAckHeader {
  ReplyTo reply;
  void pup(pup::Er& p) { p | reply; }
};

/// Liveness heartbeat: PE `src` telling its ring successor it is alive.
/// Best-effort (kFtBestEffort): a lost beat is superseded by the next.
struct HeartbeatHeader {
  std::int32_t src = -1;
  std::uint64_t seq = 0;
  void pup(pup::Er& p) {
    p | src;
    p | seq;
  }
};

/// Recovery coordinator's failure notice: broadcast to every live PE at
/// the start of recovery round `round` so each resets its liveness
/// detector (the failed PE stops beating) and stops trusting in-flight
/// traffic from the casualty.
struct FtNoticeHeader {
  std::uint64_t round = 0;
  std::int32_t coordinator = -1;
  std::int32_t failed_pe = -1;
  void pup(pup::Er& p) {
    p | round;
    p | coordinator;
    p | failed_pe;
  }
};

// ---- cx::ft checkpoint blobs ---------------------------------------------
// One PeBlob captures everything the scheduler owns on one PE. Iteration
// order of the live unordered_maps is not deterministic, so every list is
// sorted before packing — a fault-free run and a restored run must produce
// byte-identical blobs (the tests compare digests).

struct ElementBlob {
  Index idx;
  std::uint32_t red_no = 0;
  std::vector<std::byte> state;  ///< the chare's own pup()
  void pup(pup::Er& p) {
    p | idx;
    p | red_no;
    p | state;
  }
};

struct OverrideBlob {
  Index idx;
  std::int32_t pe = 0;
  void pup(pup::Er& p) {
    p | idx;
    p | pe;
  }
};

struct CollBlob {
  CollectionInfo info;
  std::vector<ElementBlob> elements;    ///< sorted by Index
  std::vector<OverrideBlob> overrides;  ///< sorted by Index
  void pup(pup::Er& p) {
    p | info;
    p | elements;
    p | overrides;
  }
};

struct RedBlob {
  CollectionId coll = kInvalidCollection;
  std::uint32_t red_no = 0;
  std::uint64_t count = 0;
  bool has_acc = false;
  std::vector<std::byte> acc;
  CombineId combiner = kNoCombine;
  Callback cb;
  void pup(pup::Er& p) {
    p | coll;
    p | red_no;
    p | count;
    p | has_acc;
    p | acc;
    p | combiner;
    p | cb;
  }
};

struct PeBlob {
  std::vector<CollBlob> colls;      ///< sorted by collection id
  std::vector<RedBlob> reductions;  ///< red_root is a std::map: ordered
  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  FutureId next_future = 0;
  void pup(pup::Er& p) {
    p | colls;
    p | reductions;
    p | created;
    p | processed;
    p | next_future;
  }
};

}  // namespace cx::wire
