#pragma once
// cx::wire — every header struct that travels between PEs, in one
// place. The runtime (core/), the fault-tolerance handlers (ft), the
// machine backends and the wire tests all consume this header; the
// packed layout is the PUP traversal order below, and the envelope
// builder (wire/envelope.hpp) packs a header immediately followed by
// its body bytes.
//
// Layout stability: these structs define the on-wire format. Changing
// field order or adding fields changes checkpoint digests and breaks
// mixed-version runs — extend via new headers, not by editing packed
// layouts casually.

#include <cstdint>
#include <map>
#include <vector>

#include "core/collection.hpp"
#include "core/ids.hpp"
#include "core/index.hpp"
#include "core/reduction.hpp"
#include "ft/fault.hpp"
#include "pup/pup.hpp"

namespace cx::wire {

/// Point-to-point entry-method invocation; body = packed argument tuple.
struct EntryHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  EpId ep = 0;
  ReplyTo reply;
  ReplyTo bcast_done;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | ep;
    p | reply;
    p | bcast_done;
  }
};

/// Broadcast along the binomial tree; body = packed argument tuple.
struct BcastHeader {
  CollectionId coll = kInvalidCollection;
  EpId ep = 0;
  ReplyTo reply;  ///< completion slot; doubles as the broadcast key
  std::int32_t root = 0;  ///< -2 = re-dispatched, do not forward again
  void pup(pup::Er& p) {
    p | coll;
    p | ep;
    p | reply;
    p | root;
  }
};

struct BcastDoneHeader {
  CollectionId coll = kInvalidCollection;
  ReplyTo reply;
  std::uint64_t count = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | reply;
    p | count;
  }
};

/// Reduction fragment; body = partial accumulator bytes. `contributor`
/// identifies the element the fragment came from (a representative for
/// combined fragments) so combiner failures — e.g. mismatched vector
/// lengths — can say who sent the offending piece.
struct ReduceHeader {
  CollectionId coll = kInvalidCollection;
  std::uint32_t red_no = 0;
  CombineId combiner = kNoCombine;
  Callback cb;
  std::uint64_t count = 0;
  Index contributor;
  void pup(pup::Er& p) {
    p | coll;
    p | red_no;
    p | combiner;
    p | cb;
    p | count;
    p | contributor;
  }
};

/// Future fulfillment; body = packed value bytes.
struct FutureHeader {
  FutureId fid = 0;
  void pup(pup::Er& p) { p | fid; }
};

/// Element migration; body = the chare's pup()'d state. `sect_seq`
/// carries the per-section reduction sequence counters so an element's
/// section contributions stay correctly tagged across the move.
struct MigrateHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::uint32_t red_no = 0;
  bool for_lb = false;
  std::map<std::uint64_t, std::uint32_t> sect_seq;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | red_no;
    p | for_lb;
    p | sect_seq;
  }
};

struct LocUpdateHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::int32_t pe = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | pe;
  }
};

/// Sparse-array insertion; body = packed constructor arguments.
struct InsertHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  FactoryId ctor = 0;
  std::int32_t on_pe = -1;  ///< requested placement (-1 = map decides)
  bool routed = false;      ///< placement resolved; construct on arrival
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | ctor;
    p | on_pe;
    p | routed;
  }
};

struct DoneInsertingHeader {
  CollectionId coll = kInvalidCollection;
  std::int32_t root = 0;
  ReplyTo reply;  ///< completion future of done_inserting()
  void pup(pup::Er& p) {
    p | coll;
    p | root;
    p | reply;
  }
};

struct InsertCountHeader {
  CollectionId coll = kInvalidCollection;
  std::uint64_t count = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | count;
    p | reply;
  }
};

struct SetSizeHeader {
  CollectionId coll = kInvalidCollection;
  std::uint64_t size = 0;
  std::int32_t root = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | size;
    p | root;
    p | reply;
  }
};

struct SizeAckHeader {
  CollectionId coll = kInvalidCollection;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | coll;
    p | reply;
  }
};

struct LbCmdHeader {
  CollectionId coll = kInvalidCollection;
  Index idx;
  std::int32_t to_pe = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | idx;
    p | to_pe;
  }
};

struct LbAckHeader {
  CollectionId coll = kInvalidCollection;
  void pup(pup::Er& p) { p | coll; }
};

struct LbResumeHeader {
  CollectionId coll = kInvalidCollection;
  std::int32_t root = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | root;
  }
};

struct QdStartHeader {
  Callback cb;
  void pup(pup::Er& p) { p | cb; }
};

struct QdProbeHeader {
  std::uint64_t phase = 0;
  void pup(pup::Er& p) { p | phase; }
};

struct QdReplyHeader {
  std::uint64_t phase = 0;
  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  void pup(pup::Er& p) {
    p | phase;
    p | created;
    p | processed;
  }
};

/// Collection creation broadcast; body empty (the info rides inline).
struct CreateHeader {
  CollectionInfo info;
  std::int32_t root = 0;
  void pup(pup::Er& p) {
    p | info;
    p | root;
  }
};

// ---- chare-array sections ------------------------------------------------
// A section is a first-class handle over an arbitrary index subset of a
// chare array. The spec is the single source of truth: every involved
// PE derives the identical k-ary spanning tree (over the distinct home
// PEs of the members, sorted) and the identical member-to-node
// assignment from it, so no per-edge routing state ever travels.

struct SectionSpec {
  std::uint64_t id = 0;  ///< (creator_pe << 32) | per-PE counter
  CollectionId coll = kInvalidCollection;
  std::vector<Index> members;  ///< sorted, duplicates removed
  std::int32_t arity = 4;      ///< tree fanout, frozen at creation
  void pup(pup::Er& p) {
    p | id;
    p | coll;
    p | members;
    p | arity;
  }
};

/// Section construction, forwarded down the section's own tree.
/// `down` is false on the creator's initial self-routed message (which
/// may have to detour to the tree root first) and true once the spec is
/// descending the tree proper.
struct SectBuildHeader {
  SectionSpec spec;
  bool down = false;
  void pup(pup::Er& p) {
    p | spec;
    p | down;
  }
};

/// Section multicast; body = packed argument tuple. Travels initiator →
/// tree root (`down` false) → down the k-ary tree (`down` true); each
/// node delivers to the members homed on it (routing through overrides
/// for migrated ones).
struct SectBcastHeader {
  std::uint64_t sect = 0;
  CollectionId coll = kInvalidCollection;
  EpId ep = 0;
  ReplyTo reply;  ///< completion slot for broadcast_done
  bool down = false;
  void pup(pup::Er& p) {
    p | sect;
    p | coll;
    p | ep;
    p | reply;
    p | down;
  }
};

/// Section-reduction fragment travelling up the tree; body = partial
/// accumulator bytes. `seq` is the per-section sequence tag (multiple
/// reductions per section may be in flight); `contributor` names the
/// element (or a representative) for error reporting.
struct SectReduceHeader {
  std::uint64_t sect = 0;
  CollectionId coll = kInvalidCollection;
  std::uint32_t seq = 0;
  CombineId combiner = kNoCombine;
  Callback cb;
  std::uint64_t count = 0;
  Index contributor;
  void pup(pup::Er& p) {
    p | sect;
    p | coll;
    p | seq;
    p | combiner;
    p | cb;
    p | count;
    p | contributor;
  }
};

/// Completion expectation for a proper-subset broadcast_done: the
/// section tree root tells the collection's completion PE (coll % P)
/// how many delivery credits make this broadcast complete.
struct SectExpectHeader {
  CollectionId coll = kInvalidCollection;
  ReplyTo reply;
  std::uint64_t expected = 0;
  void pup(pup::Er& p) {
    p | coll;
    p | reply;
    p | expected;
  }
};

// ---- cx::ft wire headers -------------------------------------------------

struct FtFailureHeader {
  cx::ft::PeFailure failure;
  void pup(pup::Er& p) { p | failure; }
};

struct CkptHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;  ///< resolved when all PEs have stored their blob
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct CkptAckHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct RestoreHeader {
  std::uint64_t epoch = 0;
  ReplyTo reply;
  void pup(pup::Er& p) {
    p | epoch;
    p | reply;
  }
};

struct RestoreAckHeader {
  ReplyTo reply;
  void pup(pup::Er& p) { p | reply; }
};

/// Liveness heartbeat: PE `src` telling its ring successor it is alive.
/// Best-effort (kFtBestEffort): a lost beat is superseded by the next.
struct HeartbeatHeader {
  std::int32_t src = -1;
  std::uint64_t seq = 0;
  void pup(pup::Er& p) {
    p | src;
    p | seq;
  }
};

/// Recovery coordinator's failure notice: broadcast to every live PE at
/// the start of recovery round `round` so each resets its liveness
/// detector (the failed PE stops beating) and stops trusting in-flight
/// traffic from the casualty.
struct FtNoticeHeader {
  std::uint64_t round = 0;
  std::int32_t coordinator = -1;
  std::int32_t failed_pe = -1;
  void pup(pup::Er& p) {
    p | round;
    p | coordinator;
    p | failed_pe;
  }
};

// ---- cx::ft checkpoint blobs ---------------------------------------------
// One PeBlob captures everything the scheduler owns on one PE. Iteration
// order of the live unordered_maps is not deterministic, so every list is
// sorted before packing — a fault-free run and a restored run must produce
// byte-identical blobs (the tests compare digests).

struct ElementBlob {
  Index idx;
  std::uint32_t red_no = 0;
  std::vector<std::byte> state;  ///< the chare's own pup()
  /// Per-section reduction sequence counters (std::map: ordered).
  std::map<std::uint64_t, std::uint32_t> sect_seq;
  void pup(pup::Er& p) {
    p | idx;
    p | red_no;
    p | state;
    p | sect_seq;
  }
};

struct OverrideBlob {
  Index idx;
  std::int32_t pe = 0;
  void pup(pup::Er& p) {
    p | idx;
    p | pe;
  }
};

struct CollBlob {
  CollectionInfo info;
  std::vector<ElementBlob> elements;    ///< sorted by Index
  std::vector<OverrideBlob> overrides;  ///< sorted by Index
  void pup(pup::Er& p) {
    p | info;
    p | elements;
    p | overrides;
  }
};

struct RedBlob {
  CollectionId coll = kInvalidCollection;
  std::uint32_t red_no = 0;
  std::uint64_t count = 0;
  bool has_acc = false;
  std::vector<std::byte> acc;
  CombineId combiner = kNoCombine;
  Callback cb;
  void pup(pup::Er& p) {
    p | coll;
    p | red_no;
    p | count;
    p | has_acc;
    p | acc;
    p | combiner;
    p | cb;
  }
};

/// Section membership + epoch on one PE. The present/away delivery
/// split is a cache and is NOT captured: restore rebuilds it lazily on
/// the next multicast, exactly like a post-migration repair.
struct SectBlob {
  SectionSpec spec;
  std::uint64_t epoch = 0;
  void pup(pup::Er& p) {
    p | spec;
    p | epoch;
  }
};

/// In-flight section-reduction fold state at one tree node — the piece
/// that lets a crash mid-section-reduction roll back and complete.
struct SectRedBlob {
  std::uint64_t sect = 0;
  std::uint32_t seq = 0;
  std::uint64_t count = 0;
  bool has_acc = false;
  std::vector<std::byte> acc;
  CombineId combiner = kNoCombine;
  Callback cb;
  void pup(pup::Er& p) {
    p | sect;
    p | seq;
    p | count;
    p | has_acc;
    p | acc;
    p | combiner;
    p | cb;
  }
};

struct PeBlob {
  std::vector<CollBlob> colls;      ///< sorted by collection id
  std::vector<RedBlob> reductions;  ///< red_root is a std::map: ordered
  std::uint64_t created = 0;
  std::uint64_t processed = 0;
  FutureId next_future = 0;
  std::vector<SectBlob> sections;       ///< sections map: ordered by id
  std::vector<SectRedBlob> sect_reductions;  ///< sect_red map: ordered
  std::uint64_t next_sect = 0;
  void pup(pup::Er& p) {
    p | colls;
    p | reductions;
    p | created;
    p | processed;
    p | next_future;
    p | sections;
    p | sect_reductions;
    p | next_sect;
  }
};

}  // namespace cx::wire
