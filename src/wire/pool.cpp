#include "wire/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "trace/trace.hpp"
#include "util/options.hpp"

namespace cx::wire {

// Implemented in agg.cpp; declared here (not via agg.hpp) to keep the
// pool TU free of the machine/message include the aggregator needs.
void configure_agg_from_options(const cxu::Options& opt);

namespace {

using cx::trace::detail::g_wire;

constexpr int kNumClasses = 13;  // 256 .. 1 MiB, powers of two
constexpr std::size_t kBatch = 16;

/// Per-thread cache cap for one class: bounded by count and by bytes
/// (~4 MiB per class) so idle threads don't pin large blocks.
constexpr std::size_t tls_cap(std::size_t block_size) {
  const std::size_t by_bytes = (std::size_t{4} << 20) / block_size;
  return by_bytes < 4 ? 4 : (by_bytes > 64 ? 64 : by_bytes);
}

/// Global overflow cap per class (~64 MiB per class worst case).
constexpr std::size_t global_cap(std::size_t block_size) {
  const std::size_t by_bytes = (std::size_t{64} << 20) / block_size;
  return by_bytes > 4096 ? 4096 : by_bytes;
}

constexpr std::size_t class_size(int cls) {
  return kMinBlock << static_cast<std::size_t>(cls);
}

/// Size class serving `size` bytes, or -1 when the request is above
/// kMaxBlock (exact allocation, never recycled).
int class_for_request(std::size_t size) {
  if (size > kMaxBlock) return -1;
  int cls = 0;
  while (class_size(cls) < size) ++cls;
  return cls;
}

/// Class a block of capacity `cap` belongs to, or -1 when `cap` is not
/// a pool class size (the block came from the exact-size path).
int class_for_capacity(std::size_t cap) {
  if (cap < kMinBlock || cap > kMaxBlock) return -1;
  if ((cap & (cap - 1)) != 0) return -1;
  int cls = 0;
  while (class_size(cls) < cap) ++cls;
  return cls;
}

std::atomic<bool> g_pool_enabled{
    parse_toggle(std::getenv("CHARMX_WIRE_POOL"), /*unset=*/true)};

/// Mutex-protected overflow list shared by all threads, one per class.
/// Leaked on purpose: thread-local cache destructors may run after
/// static destructors, so the global store must never be destroyed.
struct GlobalStore {
  struct ClassList {
    std::mutex mutex;
    std::vector<std::byte*> blocks;
  };
  ClassList cls[kNumClasses];
};

GlobalStore& global_store() {
  static GlobalStore* g = new GlobalStore;  // intentionally leaked
  return *g;
}

/// Thread-local cache: LIFO stacks per class. Spills to / refills from
/// the global store in batches. On thread exit everything goes back to
/// the system (not the global store — see the leak note above; freeing
/// is always safe).
struct TlsCache {
  std::vector<std::byte*> cls[kNumClasses];

  ~TlsCache() {
    for (auto& list : cls) {
      for (std::byte* p : list) ::operator delete(p);
      list.clear();
    }
  }
};

TlsCache& tls() {
  thread_local TlsCache c;
  return c;
}

std::byte* take_cached(int cls) {
  auto& local = tls().cls[cls];
  if (!local.empty()) {
    std::byte* p = local.back();
    local.pop_back();
    return p;
  }
  // Refill a batch from the global overflow list.
  auto& g = global_store().cls[cls];
  {
    std::lock_guard<std::mutex> lock(g.mutex);
    if (g.blocks.empty()) return nullptr;
    const std::size_t n = g.blocks.size() < kBatch ? g.blocks.size() : kBatch;
    local.insert(local.end(), g.blocks.end() - static_cast<std::ptrdiff_t>(n),
                 g.blocks.end());
    g.blocks.resize(g.blocks.size() - n);
  }
  std::byte* p = local.back();
  local.pop_back();
  return p;
}

/// Cache a block; returns false when both the local and global lists
/// are full (caller frees to the system).
bool put_cached(int cls, std::byte* p) {
  auto& local = tls().cls[cls];
  const std::size_t cap = tls_cap(class_size(cls));
  if (local.size() < cap) {
    local.push_back(p);
    return true;
  }
  // Local cache full: spill half a batch plus this block to the global
  // overflow list so other threads (the usual receiver of our messages)
  // can reuse them.
  auto& g = global_store().cls[cls];
  std::lock_guard<std::mutex> lock(g.mutex);
  if (g.blocks.size() >= global_cap(class_size(cls))) return false;
  const std::size_t spill = kBatch / 2 < local.size() ? kBatch / 2
                                                      : local.size();
  g.blocks.insert(g.blocks.end(), local.end() - static_cast<std::ptrdiff_t>(spill),
                  local.end());
  local.resize(local.size() - spill);
  g.blocks.push_back(p);
  return true;
}

}  // namespace

std::byte* alloc_block(std::size_t size, std::size_t* cap) {
  const int cls = class_for_request(size);
  if (cls < 0) {
    *cap = size;
    g_wire.buf_allocs.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::byte*>(::operator new(size));
  }
  *cap = class_size(cls);
  if (g_pool_enabled.load(std::memory_order_relaxed)) {
    if (std::byte* p = take_cached(cls)) {
      g_wire.buf_hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  g_wire.buf_allocs.fetch_add(1, std::memory_order_relaxed);
  return static_cast<std::byte*>(::operator new(*cap));
}

void free_block(std::byte* p, std::size_t cap) noexcept {
  if (p == nullptr) return;
  const int cls = class_for_capacity(cap);
  if (cls >= 0 && g_pool_enabled.load(std::memory_order_relaxed) &&
      put_cached(cls, p)) {
    g_wire.buf_recycled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ::operator delete(p);
}

void* alloc_msg(std::size_t size) {
  if (size <= kMsgBlock && g_pool_enabled.load(std::memory_order_relaxed)) {
    const int cls = class_for_request(kMsgBlock);
    if (std::byte* p = take_cached(cls)) {
      g_wire.msg_hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    g_wire.msg_allocs.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(kMsgBlock);
  }
  g_wire.msg_allocs.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(size <= kMsgBlock ? kMsgBlock : size);
}

void free_msg(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  if (size <= kMsgBlock && g_pool_enabled.load(std::memory_order_relaxed) &&
      put_cached(class_for_request(kMsgBlock), static_cast<std::byte*>(p))) {
    g_wire.msg_recycled.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ::operator delete(p);
}

bool pool_enabled() noexcept {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

void set_pool_enabled(bool on) noexcept {
  g_pool_enabled.store(on, std::memory_order_relaxed);
}

bool parse_toggle(const char* v, bool unset) noexcept {
  if (v == nullptr) return unset;
  const auto ieq = [](const char* a, const char* b) noexcept {
    for (;; ++a, ++b) {
      const char ca = (*a >= 'A' && *a <= 'Z')
                          ? static_cast<char>(*a - 'A' + 'a')
                          : *a;
      if (ca != *b) return false;
      if (ca == '\0') return true;
    }
  };
  return !(ieq(v, "0") || ieq(v, "off") || ieq(v, "false"));
}

void configure_from_options(const cxu::Options& opt) {
  if (opt.has("wire-pool")) {
    // Bare --wire-pool parses as "true" -> enabled.
    set_pool_enabled(
        parse_toggle(opt.get_string("wire-pool", "on").c_str(), true));
  }
  configure_agg_from_options(opt);  // --wire-agg* ride along
}

void drain_caches() noexcept {
  auto& c = tls();
  for (auto& list : c.cls) {
    for (std::byte* p : list) ::operator delete(p);
    list.clear();
  }
  auto& g = global_store();
  for (auto& cl : g.cls) {
    std::lock_guard<std::mutex> lock(cl.mutex);
    for (std::byte* p : cl.blocks) ::operator delete(p);
    cl.blocks.clear();
  }
}

}  // namespace cx::wire
