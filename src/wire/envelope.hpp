#pragma once
// cx::wire envelope builder — single-pass message construction.
//
// The legacy path (PR 0-2) built every cross-PE message in three heap
// steps: pup::to_bytes(header) allocated a vector, body bytes were
// insert()-appended into it (often reallocating), and the result moved
// into a fresh Message. The builder collapses that to one pass: a
// pup::Sizer totals header + body, one pooled Message is allocated,
// its Buffer sized once (inline when it fits), and a pup::Packer
// writes header then body directly into place. The packed bytes are
// identical to the legacy to_bytes+insert layout — only the number of
// allocations and copies changes.
//
// Headers are taken by const reference; Sizer and Packer never mutate
// (Er::bytes only reads in those modes), so the const_cast inside is
// sound and fixes the old header_bytes(H h) by-value copies.

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "machine/message.hpp"
#include "pup/pup.hpp"
#include "trace/trace.hpp"
#include "wire/buffer.hpp"

namespace cx::wire {

namespace detail {

inline void note_envelope(std::size_t bytes, bool inline_payload) noexcept {
  auto& w = cx::trace::detail::g_wire;
  w.envelopes.fetch_add(1, std::memory_order_relaxed);
  w.bytes_packed.fetch_add(bytes, std::memory_order_relaxed);
  if (inline_payload) {
    w.sbo_payloads.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Thread-local bypass flag consumed by the builders (see ScopedNoAgg).
inline bool& tls_no_agg() noexcept {
  thread_local bool v = false;
  return v;
}

inline void apply_send_flags(cxm::Message& msg) noexcept {
  if (tls_no_agg()) msg.wire_flags |= cxm::kWireNoAgg;
}

}  // namespace detail

/// RAII guard: every message built on this thread while the guard lives
/// is marked kWireNoAgg and bypasses sender-side aggregation (--wire-agg).
/// For freshness-sensitive application traffic — e.g. the task pool's
/// worker heartbeats, which must not age inside an open batch while the
/// liveness layer counts silence. Nestable.
class ScopedNoAgg {
 public:
  ScopedNoAgg() noexcept : prev_(detail::tls_no_agg()) {
    detail::tls_no_agg() = true;
  }
  ~ScopedNoAgg() { detail::tls_no_agg() = prev_; }
  ScopedNoAgg(const ScopedNoAgg&) = delete;
  ScopedNoAgg& operator=(const ScopedNoAgg&) = delete;

 private:
  bool prev_;
};

namespace detail {

template <typename H>
std::size_t sized(const H& h) {
  pup::Sizer s;
  s | const_cast<H&>(h);
  return s.size();
}

}  // namespace detail

/// Header-only message: one Message allocation, one pack pass.
template <typename H>
cxm::MessagePtr make_msg(std::uint32_t handler, int dst, const H& h) {
  auto msg = std::make_unique<cxm::Message>();
  msg->handler = handler;
  msg->dst_pe = dst;
  msg->data.resize_discard(detail::sized(h));
  pup::Packer pk(msg->data.data(), msg->data.size());
  pk | const_cast<H&>(h);
  detail::note_envelope(msg->data.size(), msg->data.is_inline());
  detail::apply_send_flags(*msg);
  return msg;
}

/// Header + raw body bytes, packed back-to-back in one pass.
template <typename H>
cxm::MessagePtr make_msg(std::uint32_t handler, int dst, const H& h,
                         const std::byte* body, std::size_t body_len) {
  auto msg = std::make_unique<cxm::Message>();
  msg->handler = handler;
  msg->dst_pe = dst;
  const std::size_t hsize = detail::sized(h);
  msg->data.resize_discard(hsize + body_len);
  pup::Packer pk(msg->data.data(), msg->data.size());
  pk | const_cast<H&>(h);
  if (body_len > 0) pk.bytes(const_cast<std::byte*>(body), body_len);
  detail::note_envelope(msg->data.size(), msg->data.is_inline());
  detail::apply_send_flags(*msg);
  return msg;
}

template <typename H>
cxm::MessagePtr make_msg(std::uint32_t handler, int dst, const H& h,
                         const std::vector<std::byte>& body) {
  return make_msg(handler, dst, h, body.data(), body.size());
}

/// Header + pup-traversed body: `traverse(p)` is invoked twice, once
/// with a Sizer and once with a Packer, so argument tuples (including
/// cpy::Value ndarrays, whose pup is one contiguous bytes() call) pack
/// straight into the wire buffer with no intermediate vector.
template <typename H, typename F>
cxm::MessagePtr make_msg_pup(std::uint32_t handler, int dst, const H& h,
                             F&& traverse) {
  auto msg = std::make_unique<cxm::Message>();
  msg->handler = handler;
  msg->dst_pe = dst;
  pup::Sizer s;
  s | const_cast<H&>(h);
  traverse(static_cast<pup::Er&>(s));
  msg->data.resize_discard(s.size());
  pup::Packer pk(msg->data.data(), msg->data.size());
  pk | const_cast<H&>(h);
  traverse(static_cast<pup::Er&>(pk));
  detail::note_envelope(msg->data.size(), msg->data.is_inline());
  detail::apply_send_flags(*msg);
  return msg;
}

/// Body-only message (no header struct) from a pup traversal.
template <typename F>
cxm::MessagePtr make_msg_body(std::uint32_t handler, int dst, F&& traverse) {
  auto msg = std::make_unique<cxm::Message>();
  msg->handler = handler;
  msg->dst_pe = dst;
  pup::Sizer s;
  traverse(static_cast<pup::Er&>(s));
  msg->data.resize_discard(s.size());
  pup::Packer pk(msg->data.data(), msg->data.size());
  traverse(static_cast<pup::Er&>(pk));
  detail::note_envelope(msg->data.size(), msg->data.is_inline());
  detail::apply_send_flags(*msg);
  return msg;
}

/// Copy an already-packed payload into a fresh message — tree forwards
/// of broadcast/create payloads and ft retransmit copies. The Buffer
/// copy lands in a pooled block (or inline).
inline cxm::MessagePtr clone_payload(std::uint32_t handler, int dst,
                                     const Buffer& payload) {
  auto msg = std::make_unique<cxm::Message>();
  msg->handler = handler;
  msg->dst_pe = dst;
  msg->data = payload;
  detail::note_envelope(msg->data.size(), msg->data.is_inline());
  detail::apply_send_flags(*msg);
  return msg;
}

/// Unpack a header from the front of a payload; `*body_off` (optional)
/// receives the offset where the body starts.
template <typename H, typename Bytes>
H read_header(const Bytes& payload, std::size_t* body_off = nullptr) {
  pup::Unpacker u(payload.data(), payload.size());
  H h{};
  u | h;
  if (body_off != nullptr) *body_off = u.offset();
  return h;
}

}  // namespace cx::wire
