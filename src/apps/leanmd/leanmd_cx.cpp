#include "apps/leanmd/leanmd_cx.hpp"

#include "util/timer.hpp"

namespace leanmd {

namespace {

constexpr int kForcesPerStep = 27;  // 26 neighbor computes + 1 self
constexpr int kAtomMsgs = 26;

struct Registrar {
  Registrar() {
    cx::set_when<&Cell::recv_forces>(
        [](Cell& self, const int& s, const std::vector<double>&,
           const double&) { return s == self.step && !self.migrating; });
    cx::set_when<&Cell::recv_atoms>(
        [](Cell& self, const int& s, const Atoms&) {
          return s == self.step && self.migrating;
        });
    cx::set_when<&Compute::recv_positions>(
        [](Compute& self, const int& s, const int&,
           const std::vector<double>&) { return s == self.step; });
  }
};
const Registrar registrar;

/// Nominal bytes of a positions/forces message in modeled mode.
std::uint64_t nominal_payload(const PhysParams& p) {
  return static_cast<std::uint64_t>(p.ppc) * 3 * sizeof(double);
}

}  // namespace

// ---------------------------------------------------------------------------
// Cell

Cell::Cell(PhysParams p) : params(p) {
  const cx::Index& me = this_index();
  if (params.real) {
    atoms = init_cell(params, me[0], me[1], me[2]);
  }
}

void Cell::start(cx::CollectionProxy<Compute> cmp, cx::Callback done) {
  computes = cmp;
  done_cb = done;
  send_positions();
}

void Cell::send_positions() {
  forces.assign(params.real ? atoms.pos.size() : 0, 0.0);
  got_forces = 0;
  const cx::Index& me = this_index();
  const int x = me[0], y = me[1], z = me[2];
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        cx::Index target;
        int role;
        if (dx == 0 && dy == 0 && dz == 0) {
          target = compute_index(x, y, z, 0, 0, 0);
          role = 0;
        } else if (is_canonical(dx, dy, dz)) {
          target = compute_index(x, y, z, dx, dy, dz);
          role = 0;
        } else {
          target = compute_index(wrap(x + dx, params.cx),
                                 wrap(y + dy, params.cy),
                                 wrap(z + dz, params.cz), -dx, -dy, -dz);
          role = 1;
        }
        if (params.real) {
          computes[target].send<&Compute::recv_positions>(step, role,
                                                          atoms.pos);
        } else {
          computes[target].send_sized<&Compute::recv_positions>(
              nominal_payload(params), step, role, std::vector<double>{});
        }
      }
    }
  }
}

void Cell::recv_forces(int, std::vector<double> f, double) {
  if (params.real) {
    for (std::size_t i = 0; i < forces.size() && i < f.size(); ++i) {
      forces[i] += f[i];
    }
  }
  if (++got_forces < kForcesPerStep) return;
  // All forces in: integrate and advance.
  if (params.real) {
    const double w0 = cxu::wall_time();
    integrate(params, atoms, forces);
    cx::charge(cxu::wall_time() - w0);
  }
  ++step;
  after_step();
}

void Cell::after_step() {
  if (step >= params.steps) {
    finish();
    return;
  }
  if (params.migrate_every > 0 && step % params.migrate_every == 0) {
    begin_migration();
    return;
  }
  send_positions();
}

void Cell::begin_migration() {
  migrating = true;
  got_atoms = 0;
  const cx::Index& me = this_index();
  std::vector<Atoms> leaving;
  if (params.real) {
    partition_atoms(params, me[0], me[1], me[2], atoms, leaving);
  } else {
    leaving.assign(27, Atoms{});
  }
  auto arr = cx::collection_of<Cell>(*this);
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const auto slot = static_cast<std::size_t>((dx + 1) * 9 +
                                                   (dy + 1) * 3 + (dz + 1));
        auto nb = arr[{wrap(me[0] + dx, params.cx),
                       wrap(me[1] + dy, params.cy),
                       wrap(me[2] + dz, params.cz)}];
        nb.send<&Cell::recv_atoms>(step, std::move(leaving[slot]));
      }
    }
  }
}

void Cell::recv_atoms(int, Atoms incoming) {
  if (params.real) {
    atoms.pos.insert(atoms.pos.end(), incoming.pos.begin(),
                     incoming.pos.end());
    atoms.vel.insert(atoms.vel.end(), incoming.vel.begin(),
                     incoming.vel.end());
  }
  if (++got_atoms < kAtomMsgs) return;
  migrating = false;
  send_positions();
}

void Cell::finish() {
  double ke = 0.0, mom[3] = {0, 0, 0};
  if (params.real) kinetic_stats(params, atoms, ke, mom);
  std::vector<double> stats = {
      ke, static_cast<double>(params.real ? atoms.count() : 0), mom[0],
      mom[1], mom[2]};
  contribute(stats, cx::reducer::sum<std::vector<double>>(), done_cb);
}

void Cell::pup(pup::Er& p) {
  p | params;
  atoms.pup(p);
  p | forces;
  p | step;
  p | got_forces;
  p | got_atoms;
  p | migrating;
  computes.pup(p);
  done_cb.pup(p);
}

// ---------------------------------------------------------------------------
// Compute

Compute::Compute(PhysParams p) : params(p) {}

void Compute::set_cells(cx::CollectionProxy<Cell> c) { cells = c; }

void Compute::recv_positions(int, int role, std::vector<double> pos) {
  if (role == 0) {
    pos0 = std::move(pos);
  } else {
    pos1 = std::move(pos);
  }
  const int expected = is_self() ? 1 : 2;
  if (++got < expected) return;
  run_interaction();
  got = 0;
  pos0.clear();
  pos1.clear();
  ++step;
}

void Compute::run_interaction() {
  const cx::Index& ix = this_index();
  const int x = ix[0], y = ix[1], z = ix[2];
  const int dx = ix[3] - 1, dy = ix[4] - 1, dz = ix[5] - 1;
  auto base = cells[{x, y, z}];
  const std::uint64_t nominal = nominal_payload(params);

  if (is_self()) {
    if (params.real) {
      std::vector<double> f;
      const double w0 = cxu::wall_time();
      const double pe = lj_self_forces(params, pos0, f);
      cx::charge(cxu::wall_time() - w0);
      base.send<&Cell::recv_forces>(step, std::move(f), pe);
    } else {
      cx::compute(params.pair_cost * 0.5 * params.ppc * params.ppc);
      base.send_sized<&Cell::recv_forces>(nominal, step,
                                          std::vector<double>{}, 0.0);
    }
    return;
  }

  auto nbr = cells[{wrap(x + dx, params.cx), wrap(y + dy, params.cy),
                    wrap(z + dz, params.cz)}];
  if (params.real) {
    // Periodic image shift of the neighbor cell relative to the base.
    double shift[3];
    const int raw[3] = {x + dx, y + dy, z + dz};
    const int wrapped[3] = {wrap(x + dx, params.cx),
                            wrap(y + dy, params.cy),
                            wrap(z + dz, params.cz)};
    for (int d = 0; d < 3; ++d) {
      shift[d] = (raw[d] - wrapped[d]) * params.cell_size;
    }
    std::vector<double> f0, f1;
    const double w0 = cxu::wall_time();
    const double pe = lj_pair_forces(params, pos0, pos1, shift, f0, f1);
    cx::charge(cxu::wall_time() - w0);
    base.send<&Cell::recv_forces>(step, std::move(f0), pe);
    nbr.send<&Cell::recv_forces>(step, std::move(f1), pe);
  } else {
    cx::compute(params.pair_cost * params.ppc * params.ppc);
    base.send_sized<&Cell::recv_forces>(nominal, step,
                                        std::vector<double>{}, 0.0);
    nbr.send_sized<&Cell::recv_forces>(nominal, step, std::vector<double>{},
                                       0.0);
  }
}

void Compute::pup(pup::Er& p) {
  p | params;
  cells.pup(p);
  p | step;
  p | got;
  p | pos0;
  p | pos1;
}

// ---------------------------------------------------------------------------

Result run_cx(const PhysParams& p, const cxm::MachineConfig& machine) {
  cx::RuntimeConfig cfg;
  cfg.machine = machine;
  cx::Runtime rt(cfg);
  Result result;
  double wall0 = 0.0, wall1 = 0.0;
  rt.run([&] {
    auto cells = cx::create_array<Cell>({p.cx, p.cy, p.cz}, p);
    auto computes = cx::create_sparse<Compute>(6);
    // Insert one compute per canonical pair + one self per cell, placed
    // on the home PE of the pair's base cell (locality, as in LeanMD).
    cx::CollectionInfo cell_info;
    cell_info.kind = cx::CollectionKind::Array;
    cell_info.dims = cx::Index(p.cx, p.cy, p.cz);
    cell_info.map_name = "block";
    for (int x = 0; x < p.cx; ++x) {
      for (int y = 0; y < p.cy; ++y) {
        for (int z = 0; z < p.cz; ++z) {
          const int pe = cx::home_pe(cell_info, cx::Index(x, y, z),
                                     cx::num_pes());
          computes.insert_on(pe, compute_index(x, y, z, 0, 0, 0), p);
          for (const auto& d : canonical_dirs()) {
            computes.insert_on(pe, compute_index(x, y, z, d[0], d[1], d[2]),
                               p);
          }
        }
      }
    }
    computes.done_inserting().get();
    computes.broadcast_done<&Compute::set_cells>(cells).get();
    auto f = cx::make_future<std::vector<double>>();
    wall0 = cxu::wall_time();
    cells.broadcast<&Cell::start>(computes, cx::cb(f));
    const auto stats = f.get();
    wall1 = cxu::wall_time();
    result.kinetic_energy = stats[0];
    result.atoms = static_cast<std::int64_t>(stats[1]);
    result.momentum[0] = stats[2];
    result.momentum[1] = stats[3];
    result.momentum[2] = stats[4];
    cx::exit();
  });
  result.elapsed = rt.is_simulated() ? rt.sim_makespan() : (wall1 - wall0);
  result.time_per_step = result.elapsed / p.steps;
  return result;
}

}  // namespace leanmd
