#include "apps/leanmd/leanmd_cpy.hpp"

#include "core/charm.hpp"
#include "model/cpy.hpp"
#include "util/timer.hpp"

namespace leanmd {

using cpy::Args;
using cpy::DChare;
using cpy::DClass;
using cpy::Value;

namespace {

PhysParams params_of(DChare& self) {
  PhysParams p;
  p.cx = static_cast<int>(self["cx"].as_int());
  p.cy = static_cast<int>(self["cy"].as_int());
  p.cz = static_cast<int>(self["cz"].as_int());
  p.ppc = static_cast<int>(self["ppc"].as_int());
  p.cell_size = self["cell_size"].as_real();
  p.cutoff = self["cutoff"].as_real();
  p.epsilon = self["epsilon"].as_real();
  p.sigma = self["sigma"].as_real();
  p.dt = self["dt"].as_real();
  p.mass = self["mass"].as_real();
  p.steps = static_cast<int>(self["steps"].as_int());
  p.migrate_every = static_cast<int>(self["migrate_every"].as_int());
  p.real = self["is_real"].truthy();
  p.pair_cost = self["pair_cost"].as_real();
  return p;
}

Args params_args(const PhysParams& p) {
  return {Value(p.cx),        Value(p.cy),       Value(p.cz),
          Value(p.ppc),       Value(p.cell_size), Value(p.cutoff),
          Value(p.epsilon),   Value(p.sigma),    Value(p.dt),
          Value(p.mass),      Value(p.steps),    Value(p.migrate_every),
          Value(p.real),      Value(p.pair_cost)};
}

const std::vector<std::string>& params_names() {
  static const std::vector<std::string> names = {
      "cx",   "cy",    "cz",    "ppc",          "cell_size",
      "cutoff", "epsilon", "sigma", "dt",       "mass",
      "steps", "migrate_every", "is_real",      "pair_cost"};
  return names;
}

void store_params(DChare& self, Args& a) {
  const auto& names = params_names();
  for (std::size_t i = 0; i < a.size() && i < names.size(); ++i) {
    self[names[i]] = a[i];
  }
}

int coord(DChare& self, int d) {
  return static_cast<int>(self["thisIndex"].item(Value(d)).as_int());
}

std::uint64_t nominal_payload(const PhysParams& p) {
  return static_cast<std::uint64_t>(p.ppc) * 3 * sizeof(double);
}

void send_positions(DChare& self) {
  const PhysParams p = params_of(self);
  self["forces"] =
      p.real ? Value::zeros(self["pos"].length()) : Value::zeros(0);
  self["got_forces"] = Value(0);
  const int x = coord(self, 0), y = coord(self, 1), z = coord(self, 2);
  auto computes = cpy::collection_from(self["computes"]);
  const std::int64_t step = self["step"].as_int();
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        cx::Index target;
        int role;
        if (dx == 0 && dy == 0 && dz == 0) {
          target = compute_index(x, y, z, 0, 0, 0);
          role = 0;
        } else if (is_canonical(dx, dy, dz)) {
          target = compute_index(x, y, z, dx, dy, dz);
          role = 0;
        } else {
          target = compute_index(wrap(x + dx, p.cx), wrap(y + dy, p.cy),
                                 wrap(z + dz, p.cz), -dx, -dy, -dz);
          role = 1;
        }
        if (p.real) {
          computes[target].send("recvPositions",
                                {Value(step), Value(role), self["pos"]});
        } else {
          computes[target].send_sized(
              "recvPositions", {Value(step), Value(role), Value::none()},
              nominal_payload(p));
        }
      }
    }
  }
}

void after_step(DChare& self);

void begin_migration(DChare& self) {
  const PhysParams p = params_of(self);
  self["migrating"] = Value(true);
  self["got_atoms"] = Value(0);
  const int x = coord(self, 0), y = coord(self, 1), z = coord(self, 2);
  std::vector<Atoms> leaving;
  if (p.real) {
    Atoms atoms;
    atoms.pos = self["pos"].as_f64_array()->data;
    atoms.vel = self["vel"].as_f64_array()->data;
    partition_atoms(p, x, y, z, atoms, leaving);
    self["pos"] = Value::array(std::move(atoms.pos));
    self["vel"] = Value::array(std::move(atoms.vel));
  } else {
    leaving.assign(27, Atoms{});
  }
  auto arr = cpy::collection_proxy_of(self);
  const std::int64_t step = self["step"].as_int();
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const auto slot = static_cast<std::size_t>((dx + 1) * 9 +
                                                   (dy + 1) * 3 + (dz + 1));
        auto nb = arr[{wrap(x + dx, p.cx), wrap(y + dy, p.cy),
                       wrap(z + dz, p.cz)}];
        nb.send("recvAtoms",
                {Value(step), Value::array(std::move(leaving[slot].pos)),
                 Value::array(std::move(leaving[slot].vel))});
      }
    }
  }
}

void finish(DChare& self) {
  const PhysParams p = params_of(self);
  double ke = 0.0, mom[3] = {0, 0, 0};
  std::size_t n = 0;
  if (p.real) {
    Atoms atoms;
    atoms.pos = self["pos"].as_f64_array()->data;
    atoms.vel = self["vel"].as_f64_array()->data;
    kinetic_stats(p, atoms, ke, mom);
    n = atoms.count();
  }
  self.contribute_value(
      Value::array({ke, static_cast<double>(n), mom[0], mom[1], mom[2]}),
      "sum",
      cpy::DTarget::to_future(cpy::future_from(self["done"]).slot()));
}

void after_step(DChare& self) {
  const PhysParams p = params_of(self);
  const std::int64_t step = self["step"].as_int();
  if (step >= p.steps) {
    finish(self);
    return;
  }
  if (p.migrate_every > 0 && step % p.migrate_every == 0) {
    begin_migration(self);
    return;
  }
  send_positions(self);
}

}  // namespace

void register_cpy_classes() {
  static const bool once = [] {
    // -------------------------------------------------------------- Cell
    DClass cell("leanmd.Cell");
    cell.def("__init__", params_names(), [](DChare& self, Args& a) {
      store_params(self, a);
      self["step"] = Value(0);
      self["got_forces"] = Value(0);
      self["got_atoms"] = Value(0);
      self["migrating"] = Value(false);
      const PhysParams p = params_of(self);
      if (p.real) {
        Atoms atoms = init_cell(p, coord(self, 0), coord(self, 1),
                                coord(self, 2));
        self["pos"] = Value::array(std::move(atoms.pos));
        self["vel"] = Value::array(std::move(atoms.vel));
      } else {
        self["pos"] = Value::zeros(0);
        self["vel"] = Value::zeros(0);
      }
      self["forces"] = Value::zeros(0);
      return Value::none();
    });

    cell.def("start", {"computes", "done"}, [](DChare& self, Args& a) {
      self["computes"] = a[0];
      self["done"] = a[1];
      send_positions(self);
      return Value::none();
    });

    cell.def("recvForces", {"step", "f", "pe"}, [](DChare& self, Args& a) {
      const PhysParams p = params_of(self);
      if (p.real) {
        auto& acc = self["forces"].as_f64_array()->data;
        const auto& f = a[1].as_f64_array()->data;
        for (std::size_t i = 0; i < acc.size() && i < f.size(); ++i) {
          acc[i] += f[i];
        }
      }
      self["got_forces"] = Value(self["got_forces"].as_int() + 1);
      if (self["got_forces"].as_int() < 27) return Value::none();
      if (p.real) {
        const double w0 = cxu::wall_time();
        Atoms atoms;
        atoms.pos = std::move(self["pos"].as_f64_array()->data);
        atoms.vel = std::move(self["vel"].as_f64_array()->data);
        integrate(p, atoms, self["forces"].as_f64_array()->data);
        self["pos"].as_f64_array()->data = std::move(atoms.pos);
        self["vel"].as_f64_array()->data = std::move(atoms.vel);
        cx::charge(cxu::wall_time() - w0);
      }
      self["step"] = Value(self["step"].as_int() + 1);
      after_step(self);
      return Value::none();
    });
    cell.when("recvForces", "self.step == step and not self.migrating");

    cell.def("recvAtoms", {"step", "pos", "vel"}, [](DChare& self, Args& a) {
      const PhysParams p = params_of(self);
      if (p.real) {
        auto& pos = self["pos"].as_f64_array()->data;
        auto& vel = self["vel"].as_f64_array()->data;
        const auto& ipos = a[1].as_f64_array()->data;
        const auto& ivel = a[2].as_f64_array()->data;
        pos.insert(pos.end(), ipos.begin(), ipos.end());
        vel.insert(vel.end(), ivel.begin(), ivel.end());
      }
      self["got_atoms"] = Value(self["got_atoms"].as_int() + 1);
      if (self["got_atoms"].as_int() < 26) return Value::none();
      self["migrating"] = Value(false);
      send_positions(self);
      return Value::none();
    });
    cell.when("recvAtoms", "self.step == step and self.migrating");

    // ----------------------------------------------------------- Compute
    DClass cmp("leanmd.Compute");
    cmp.def("__init__", params_names(), [](DChare& self, Args& a) {
      store_params(self, a);
      self["step"] = Value(0);
      self["got"] = Value(0);
      self["pos0"] = Value::zeros(0);
      self["pos1"] = Value::zeros(0);
      return Value::none();
    });

    cmp.def("setCells", {"cells"}, [](DChare& self, Args& a) {
      self["cells"] = a[0];
      return Value::none();
    });

    cmp.def("recvPositions", {"step", "role", "pos"},
            [](DChare& self, Args& a) {
              const PhysParams p = params_of(self);
              if (a[1].as_int() == 0) {
                self["pos0"] = a[2];
              } else {
                self["pos1"] = a[2];
              }
              const int ix3 = static_cast<int>(
                  self["thisIndex"].item(Value(3)).as_int());
              const int ix4 = static_cast<int>(
                  self["thisIndex"].item(Value(4)).as_int());
              const int ix5 = static_cast<int>(
                  self["thisIndex"].item(Value(5)).as_int());
              const bool self_pair = ix3 == 1 && ix4 == 1 && ix5 == 1;
              const int expected = self_pair ? 1 : 2;
              self["got"] = Value(self["got"].as_int() + 1);
              if (self["got"].as_int() < expected) return Value::none();

              const int x = coord(self, 0), y = coord(self, 1),
                        z = coord(self, 2);
              const int dx = ix3 - 1, dy = ix4 - 1, dz = ix5 - 1;
              auto cells = cpy::collection_from(self["cells"]);
              const std::int64_t step = self["step"].as_int();
              const std::uint64_t nominal = nominal_payload(p);
              auto base = cells[{x, y, z}];
              if (self_pair) {
                if (p.real) {
                  std::vector<double> f;
                  const double w0 = cxu::wall_time();
                  const double pe = lj_self_forces(
                      p, self["pos0"].as_f64_array()->data, f);
                  cx::charge(cxu::wall_time() - w0);
                  base.send("recvForces",
                            {Value(step), Value::array(std::move(f)),
                             Value(pe)});
                } else {
                  cx::compute(p.pair_cost * 0.5 * p.ppc * p.ppc);
                  base.send_sized("recvForces",
                                  {Value(step), Value::none(), Value(0.0)},
                                  nominal);
                }
              } else {
                auto nbr = cells[{wrap(x + dx, p.cx), wrap(y + dy, p.cy),
                                  wrap(z + dz, p.cz)}];
                if (p.real) {
                  double shift[3];
                  const int raw[3] = {x + dx, y + dy, z + dz};
                  const int wrapped[3] = {wrap(x + dx, p.cx),
                                          wrap(y + dy, p.cy),
                                          wrap(z + dz, p.cz)};
                  for (int d = 0; d < 3; ++d) {
                    shift[d] = (raw[d] - wrapped[d]) * p.cell_size;
                  }
                  std::vector<double> f0, f1;
                  const double w0 = cxu::wall_time();
                  const double pe = lj_pair_forces(
                      p, self["pos0"].as_f64_array()->data,
                      self["pos1"].as_f64_array()->data, shift, f0, f1);
                  cx::charge(cxu::wall_time() - w0);
                  base.send("recvForces",
                            {Value(step), Value::array(std::move(f0)),
                             Value(pe)});
                  nbr.send("recvForces",
                           {Value(step), Value::array(std::move(f1)),
                            Value(pe)});
                } else {
                  cx::compute(p.pair_cost * p.ppc * p.ppc);
                  base.send_sized("recvForces",
                                  {Value(step), Value::none(), Value(0.0)},
                                  nominal);
                  nbr.send_sized("recvForces",
                                 {Value(step), Value::none(), Value(0.0)},
                                 nominal);
                }
              }
              self["got"] = Value(0);
              self["pos0"] = Value::zeros(0);
              self["pos1"] = Value::zeros(0);
              self["step"] = Value(step + 1);
              return Value::none();
            });
    cmp.when("recvPositions", "self.step == step");
    return true;
  }();
  (void)once;
}

Result run_cpy(const PhysParams& p, const cxm::MachineConfig& machine,
               double dispatch_overhead) {
  register_cpy_classes();
  cx::RuntimeConfig cfg;
  cfg.machine = machine;
  cx::Runtime rt(cfg);
  DChare::set_sim_dispatch_overhead(dispatch_overhead);
  Result result;
  double wall0 = 0.0, wall1 = 0.0;
  rt.run([&] {
    auto cells =
        cpy::create_array("leanmd.Cell", {p.cx, p.cy, p.cz}, params_args(p));
    auto computes = cpy::create_sparse_array("leanmd.Compute", 6);
    cx::CollectionInfo cell_info;
    cell_info.kind = cx::CollectionKind::Array;
    cell_info.dims = cx::Index(p.cx, p.cy, p.cz);
    cell_info.map_name = "block";
    for (int x = 0; x < p.cx; ++x) {
      for (int y = 0; y < p.cy; ++y) {
        for (int z = 0; z < p.cz; ++z) {
          const int pe = cx::home_pe(cell_info, cx::Index(x, y, z),
                                     cx::num_pes());
          computes.insert_on(pe, compute_index(x, y, z, 0, 0, 0),
                             params_args(p));
          for (const auto& d : canonical_dirs()) {
            computes.insert_on(pe, compute_index(x, y, z, d[0], d[1], d[2]),
                               params_args(p));
          }
        }
      }
    }
    computes.done_inserting().get();
    computes.broadcast_done("setCells", {cpy::to_value(cells)}).get();
    auto f = cx::make_future<Value>();
    wall0 = cxu::wall_time();
    cells.broadcast("start", {cpy::to_value(computes), cpy::to_value(f)});
    const Value stats = f.get();
    wall1 = cxu::wall_time();
    result.kinetic_energy = stats.item(Value(0)).as_real();
    result.atoms =
        static_cast<std::int64_t>(stats.item(Value(1)).as_real());
    result.momentum[0] = stats.item(Value(2)).as_real();
    result.momentum[1] = stats.item(Value(3)).as_real();
    result.momentum[2] = stats.item(Value(4)).as_real();
    cx::exit();
  });
  DChare::set_sim_dispatch_overhead(0.0);
  result.elapsed = rt.is_simulated() ? rt.sim_makespan() : (wall1 - wall0);
  result.time_per_step = result.elapsed / p.steps;
  return result;
}

}  // namespace leanmd
