#include "apps/leanmd/leanmd_common.hpp"

#include <cmath>
#include <stdexcept>

namespace leanmd {

Atoms init_cell(const PhysParams& p, int i, int j, int k) {
  Atoms atoms;
  cxu::Rng rng(0x1ea0 + static_cast<std::uint64_t>(
                            (i * p.cy + j) * p.cz + k) *
                            2654435761ULL);
  const double lo[3] = {i * p.cell_size, j * p.cell_size, k * p.cell_size};
  // Jittered lattice: ceil(cbrt(ppc)) points per side.
  int side = 1;
  while (side * side * side < p.ppc) ++side;
  const double spacing = p.cell_size / side;
  int placed = 0;
  for (int a = 0; a < side && placed < p.ppc; ++a) {
    for (int b = 0; b < side && placed < p.ppc; ++b) {
      for (int c = 0; c < side && placed < p.ppc; ++c) {
        const double jx = rng.uniform(-0.05, 0.05) * spacing;
        const double jy = rng.uniform(-0.05, 0.05) * spacing;
        const double jz = rng.uniform(-0.05, 0.05) * spacing;
        atoms.pos.push_back(lo[0] + (a + 0.5) * spacing + jx);
        atoms.pos.push_back(lo[1] + (b + 0.5) * spacing + jy);
        atoms.pos.push_back(lo[2] + (c + 0.5) * spacing + jz);
        atoms.vel.push_back(rng.uniform(-0.1, 0.1));
        atoms.vel.push_back(rng.uniform(-0.1, 0.1));
        atoms.vel.push_back(rng.uniform(-0.1, 0.1));
        ++placed;
      }
    }
  }
  return atoms;
}

const std::vector<cx::Index>& canonical_dirs() {
  static const std::vector<cx::Index> dirs = [] {
    std::vector<cx::Index> out;
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz)
          if (is_canonical(dx, dy, dz)) out.push_back({dx, dy, dz});
    return out;
  }();
  return dirs;
}

bool is_canonical(int dx, int dy, int dz) {
  if (dx != 0) return dx > 0;
  if (dy != 0) return dy > 0;
  return dz > 0;
}

cx::Index compute_index(int x, int y, int z, int dx, int dy, int dz) {
  return {x, y, z, dx + 1, dy + 1, dz + 1};
}

namespace {

double lj_accumulate(const PhysParams& p, double dx, double dy, double dz,
                     double& fx, double& fy, double& fz) {
  // Outputs must be defined on every path: pairs beyond the cutoff
  // contribute zero force (not stale stack contents).
  fx = fy = fz = 0.0;
  const double r2 = dx * dx + dy * dy + dz * dz;
  if (r2 >= p.cutoff * p.cutoff || r2 == 0.0) return 0.0;
  const double s2 = p.sigma * p.sigma / r2;
  const double s6 = s2 * s2 * s2;
  const double s12 = s6 * s6;
  // F/r: 24 eps (2 s12 - s6) / r^2
  const double f_over_r = 24.0 * p.epsilon * (2.0 * s12 - s6) / r2;
  fx = f_over_r * dx;
  fy = f_over_r * dy;
  fz = f_over_r * dz;
  return 4.0 * p.epsilon * (s12 - s6);
}

}  // namespace

double lj_pair_forces(const PhysParams& p, const std::vector<double>& pos_a,
                      const std::vector<double>& pos_b,
                      const double shift[3], std::vector<double>& f_a,
                      std::vector<double>& f_b) {
  f_a.assign(pos_a.size(), 0.0);
  f_b.assign(pos_b.size(), 0.0);
  double pe = 0.0;
  const std::size_t na = pos_a.size() / 3, nb = pos_b.size() / 3;
  for (std::size_t i = 0; i < na; ++i) {
    const double ax = pos_a[3 * i], ay = pos_a[3 * i + 1],
                 az = pos_a[3 * i + 2];
    for (std::size_t j = 0; j < nb; ++j) {
      const double bx = pos_b[3 * j] + shift[0];
      const double by = pos_b[3 * j + 1] + shift[1];
      const double bz = pos_b[3 * j + 2] + shift[2];
      double fx, fy, fz;
      pe += lj_accumulate(p, ax - bx, ay - by, az - bz, fx, fy, fz);
      f_a[3 * i] += fx;
      f_a[3 * i + 1] += fy;
      f_a[3 * i + 2] += fz;
      f_b[3 * j] -= fx;
      f_b[3 * j + 1] -= fy;
      f_b[3 * j + 2] -= fz;
    }
  }
  return pe;
}

double lj_self_forces(const PhysParams& p, const std::vector<double>& pos,
                      std::vector<double>& f) {
  f.assign(pos.size(), 0.0);
  double pe = 0.0;
  const std::size_t n = pos.size() / 3;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double fx, fy, fz;
      pe += lj_accumulate(p, pos[3 * i] - pos[3 * j],
                          pos[3 * i + 1] - pos[3 * j + 1],
                          pos[3 * i + 2] - pos[3 * j + 2], fx, fy, fz);
      f[3 * i] += fx;
      f[3 * i + 1] += fy;
      f[3 * i + 2] += fz;
      f[3 * j] -= fx;
      f[3 * j + 1] -= fy;
      f[3 * j + 2] -= fz;
    }
  }
  return pe;
}

void integrate(const PhysParams& p, Atoms& atoms,
               const std::vector<double>& forces) {
  if (forces.size() != atoms.pos.size()) {
    throw std::invalid_argument("leanmd: force/position size mismatch");
  }
  const double scale = p.dt / p.mass;
  for (std::size_t i = 0; i < atoms.pos.size(); ++i) {
    atoms.vel[i] += forces[i] * scale;
    atoms.pos[i] += atoms.vel[i] * p.dt;
  }
}

void partition_atoms(const PhysParams& p, int i, int j, int k, Atoms& atoms,
                     std::vector<Atoms>& leaving) {
  leaving.assign(27, Atoms{});
  Atoms staying;
  const double lo[3] = {i * p.cell_size, j * p.cell_size, k * p.cell_size};
  const double box[3] = {p.box(0), p.box(1), p.box(2)};
  const std::size_t n = atoms.count();
  for (std::size_t a = 0; a < n; ++a) {
    int d[3];
    double pos[3];
    for (int dim = 0; dim < 3; ++dim) {
      pos[dim] = atoms.pos[3 * a + dim];
      const double rel = pos[dim] - lo[dim];
      int delta = rel < 0.0 ? -1 : (rel >= p.cell_size ? 1 : 0);
      // dt is small: an atom moves at most one cell per migration; clamp
      // pathological velocities to the adjacent cell.
      d[dim] = delta;
      // Wrap across the periodic box.
      if (pos[dim] < 0.0) pos[dim] += box[dim];
      if (pos[dim] >= box[dim]) pos[dim] -= box[dim];
    }
    Atoms& dst = (d[0] == 0 && d[1] == 0 && d[2] == 0)
                     ? staying
                     : leaving[static_cast<std::size_t>(
                           (d[0] + 1) * 9 + (d[1] + 1) * 3 + (d[2] + 1))];
    dst.pos.push_back(pos[0]);
    dst.pos.push_back(pos[1]);
    dst.pos.push_back(pos[2]);
    dst.vel.push_back(atoms.vel[3 * a]);
    dst.vel.push_back(atoms.vel[3 * a + 1]);
    dst.vel.push_back(atoms.vel[3 * a + 2]);
  }
  atoms = std::move(staying);
}

void kinetic_stats(const PhysParams& p, const Atoms& atoms, double& ke,
                   double mom[3]) {
  ke = 0.0;
  mom[0] = mom[1] = mom[2] = 0.0;
  const std::size_t n = atoms.count();
  for (std::size_t a = 0; a < n; ++a) {
    for (int dim = 0; dim < 3; ++dim) {
      const double v = atoms.vel[3 * a + dim];
      ke += 0.5 * p.mass * v * v;
      mom[dim] += p.mass * v;
    }
  }
}

}  // namespace leanmd
