#pragma once
// LeanMD on the typed core runtime — the "Charm++" series of Fig. 4.
// See leanmd_common.hpp for the decomposition.

#include <string>
#include <vector>

#include "apps/leanmd/leanmd_common.hpp"
#include "core/charm.hpp"

namespace leanmd {

class Compute;

/// A cell of the 3D space decomposition; owns its atoms.
class Cell : public cx::Chare {
 public:
  Cell() = default;
  explicit Cell(PhysParams p);

  /// Broadcast entry: begin stepping; on completion contribute
  /// {ke, natoms, px, py, pz} (sum) to `done`.
  void start(cx::CollectionProxy<Compute> computes, cx::Callback done);
  /// Per-atom forces from one compute, guarded by when(step == mine).
  void recv_forces(int step, std::vector<double> forces, double pe);
  /// Atoms arriving from a neighbor during migration, same guard.
  void recv_atoms(int step, Atoms incoming);

  void pup(pup::Er& p) override;

  PhysParams params;
  Atoms atoms;
  std::vector<double> forces;
  int step = 0;
  int got_forces = 0;
  int got_atoms = 0;
  bool migrating = false;
  cx::CollectionProxy<Compute> computes;
  cx::Callback done_cb;

 private:
  void send_positions();
  void begin_migration();
  void after_step();
  void finish();
};

/// A pairwise interaction; element (x,y,z,dx+1,dy+1,dz+1) of a sparse
/// 6D array handles cell (x,y,z) against cell (x+dx, y+dy, z+dz)
/// (periodic); (1,1,1) encodes the self interaction.
class Compute : public cx::Chare {
 public:
  Compute() = default;
  explicit Compute(PhysParams p);

  void set_cells(cx::CollectionProxy<Cell> cells);
  /// Positions from one side (`role` 0 = base cell, 1 = neighbor).
  void recv_positions(int step, int role, std::vector<double> pos);

  void pup(pup::Er& p) override;

  PhysParams params;
  cx::CollectionProxy<Cell> cells;
  int step = 0;
  int got = 0;
  std::vector<double> pos0, pos1;

 private:
  void run_interaction();
  [[nodiscard]] bool is_self() const {
    const cx::Index& ix = this_index();
    return ix[3] == 1 && ix[4] == 1 && ix[5] == 1;
  }
};

Result run_cx(const PhysParams& p, const cxm::MachineConfig& machine);

}  // namespace leanmd
