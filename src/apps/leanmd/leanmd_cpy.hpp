#pragma once
// LeanMD on the dynamic model layer — the "CharmPy" series of Fig. 4.
// The full port of the mini-app to the dynamic model, as the paper fully
// ported LeanMD to Python: cells and computes are dynamic classes, atom
// state lives in array attributes, force kernels are plain functions
// applied to those buffers, and delivery ordering uses when-strings.

#include "apps/leanmd/leanmd_common.hpp"
#include "machine/machine.hpp"

namespace leanmd {

/// Register the dynamic classes "leanmd.Cell" / "leanmd.Compute".
void register_cpy_classes();

Result run_cpy(const PhysParams& p, const cxm::MachineConfig& machine,
               double dispatch_overhead = 0.0);

}  // namespace leanmd
