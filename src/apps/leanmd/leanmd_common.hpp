#pragma once
// LeanMD mini-app (paper §V-C): molecular dynamics with the Lennard-Jones
// potential, mimicking the short-range non-bonded force computation of
// NAMD. The decomposition follows Charm++'s LeanMD:
//
//   * Cells — a 3D chare array; each cell owns the atoms inside its box
//     (cell side >= cutoff, periodic boundaries).
//   * Computes — one chare per interacting cell pair (13 unique neighbor
//     directions + 1 self-interaction per cell), a 6D sparse chare array
//     indexed (cell_x, cell_y, cell_z, dx+1, dy+1, dz+1). This is the
//     fine-grained decomposition that puts hundreds of chares on a PE.
//
// Each step: cells send positions to their 27 computes; computes send
// back per-atom forces; cells integrate; every `migrate_every` steps
// atoms that left their box move to the neighboring cell.

#include <cstdint>
#include <vector>

#include "core/index.hpp"
#include "pup/pup.hpp"
#include "util/rng.hpp"

namespace leanmd {

struct PhysParams {
  int cx = 3, cy = 3, cz = 3;  ///< cell grid (each dim >= 3, periodic)
  int ppc = 10;                ///< initial particles per cell
  double cell_size = 4.0;     ///< box side per cell (>= cutoff)
  double cutoff = 4.0;
  double epsilon = 1.0;
  double sigma = 1.0;
  double dt = 2.0e-3;
  double mass = 1.0;
  int steps = 10;
  int migrate_every = 5;

  bool real = true;            ///< false: modeled cost, no particle data
  double pair_cost = 1.0e-8;  ///< modeled seconds per atom pair

  [[nodiscard]] std::int64_t num_cells() const {
    return static_cast<std::int64_t>(cx) * cy * cz;
  }
  [[nodiscard]] double box(int dim) const {
    return cell_size * (dim == 0 ? cx : dim == 1 ? cy : cz);
  }

  void pup(pup::Er& p) {
    p | cx;
    p | cy;
    p | cz;
    p | ppc;
    p | cell_size;
    p | cutoff;
    p | epsilon;
    p | sigma;
    p | dt;
    p | mass;
    p | steps;
    p | migrate_every;
    p | real;
    p | pair_cost;
  }
};

/// Flat particle state: pos and vel are 3N arrays (x0,y0,z0,x1,...).
struct Atoms {
  std::vector<double> pos;
  std::vector<double> vel;

  [[nodiscard]] std::size_t count() const { return pos.size() / 3; }
  void pup(pup::Er& p) {
    p | pos;
    p | vel;
  }
};

/// Deterministic initial atoms of cell (i, j, k): jittered lattice with
/// small random velocities (zero net momentum is NOT enforced per cell).
Atoms init_cell(const PhysParams& p, int i, int j, int k);

/// The 13 canonical neighbor directions (lexicographically positive) —
/// a pair (A, A+d) is owned by the compute (A, d) iff d is canonical.
const std::vector<cx::Index>& canonical_dirs();

/// True if direction (dx, dy, dz) is canonical.
bool is_canonical(int dx, int dy, int dz);

/// Compute index for the pair (cell, dir): (x, y, z, dx+1, dy+1, dz+1).
cx::Index compute_index(int x, int y, int z, int dx, int dy, int dz);

/// Periodic wrap of a cell coordinate.
inline int wrap(int c, int n) { return ((c % n) + n) % n; }

/// LJ forces between two atom sets; `shift` is added to B's positions
/// (periodic image offset). Writes per-atom forces (3N each) and returns
/// the pair potential energy.
double lj_pair_forces(const PhysParams& p, const std::vector<double>& pos_a,
                      const std::vector<double>& pos_b, const double shift[3],
                      std::vector<double>& f_a, std::vector<double>& f_b);

/// LJ forces within one atom set (self interaction of a cell).
double lj_self_forces(const PhysParams& p, const std::vector<double>& pos,
                      std::vector<double>& f);

/// Velocity-Verlet-style update (symplectic Euler): v += f/m dt; x += v dt.
void integrate(const PhysParams& p, Atoms& atoms,
               const std::vector<double>& forces);

/// Partition atoms that left the cell box of (i, j, k): `leaving[d]`
/// receives atoms whose new owner is neighbor direction d (0..26,
/// encoded (dx+1)*9+(dy+1)*3+(dz+1), 13 == stay). Positions are wrapped
/// into the global box when crossing the periodic boundary.
void partition_atoms(const PhysParams& p, int i, int j, int k, Atoms& atoms,
                     std::vector<Atoms>& leaving);

/// Kinetic energy and momentum of an atom set.
void kinetic_stats(const PhysParams& p, const Atoms& atoms, double& ke,
                   double mom[3]);

/// Result of one run (any variant).
struct Result {
  double elapsed = 0.0;
  double time_per_step = 0.0;
  double kinetic_energy = 0.0;
  double momentum[3] = {0, 0, 0};
  std::int64_t atoms = 0;
};

}  // namespace leanmd
