#include "apps/stencil/stencil_cx.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>

#include "ft/ft.hpp"
#include "util/timer.hpp"

namespace stencil {

namespace {

/// One-time when-predicate registration (paper §II-E): a ghost message
/// is delivered only in its own iteration; earlier arrivals buffer.
struct CxRegistrar {
  CxRegistrar() {
    cx::set_when<&CxBlock::recv_ghost>(
        [](CxBlock& self, const int& msg_iter, const int&,
           const std::vector<double>&) { return msg_iter == self.iter; });
  }
};
const CxRegistrar registrar;

}  // namespace

CxBlock::CxBlock(Params p) : params(std::move(p)) {
  const cx::Index& me = this_index();
  if (params.real_kernel) {
    block = Block(params.geo, me[0], me[1], me[2]);
  }
  expected = neighbor_count(params.geo, me[0], me[1], me[2]);
}

void CxBlock::start(cx::Callback done) {
  done_cb = done;
  phase_end = params.iterations;
  begin_iteration();
}

void CxBlock::start_until(cx::Callback done, int until) {
  done_cb = done;
  phase_end = until;
  if (iter >= phase_end) {
    // Barrier broadcast (until == current iteration): just reduce.
    contribute(block_checksum(), cx::reducer::sum<double>(), done_cb);
    return;
  }
  begin_iteration();
}

void CxBlock::begin_iteration() {
  const cx::Index& me = this_index();
  auto arr = cx::collection_of<CxBlock>(*this);
  const std::uint64_t nominal_face =
      static_cast<std::uint64_t>(
          kern::face_cells(params.geo.nx, params.geo.ny, params.geo.nz, 0)) *
      sizeof(double);
  for_each_neighbor(params.geo, me[0], me[1], me[2],
                    [&](int face, int nx, int ny, int nz) {
                      auto nb = arr[{nx, ny, nz}];
                      // The neighbor receives this face on its opposite
                      // side (face ^ 1).
                      if (params.real_kernel) {
                        nb.send<&CxBlock::recv_ghost>(
                            iter, face ^ 1, block.extract_face(face));
                      } else {
                        nb.send_sized<&CxBlock::recv_ghost>(
                            nominal_face, iter, face ^ 1,
                            std::vector<double>{});
                      }
                    });
  if (expected == 0) advance();
}

void CxBlock::recv_ghost(int, int face, std::vector<double> data) {
  if (params.real_kernel) block.inject_face(face, data);
  if (++got == expected) advance();
}

void CxBlock::advance() {
  // Kernel: real (measured, charged to the virtual clock when simulated)
  // or modeled (cost charged analytically).
  double tk;
  if (params.real_kernel) {
    const double w0 = cxu::wall_time();
    block.compute();
    tk = cxu::wall_time() - w0;
    cx::charge(tk);
  } else {
    tk = modeled_block_cost(params);
    cx::compute(tk);
  }
  if (params.imbalance) {
    const cx::Index& me = this_index();
    const double alpha = alpha_factor(
        load_group(params, me[0], me[1], me[2]), params.num_load_groups,
        iter / std::max(1, params.imb_drift));
    cx::compute(tk * alpha);  // paper: wait t_k * alpha_i seconds
  }
  got = 0;
  ++iter;
  if (iter >= phase_end) {
    contribute(block_checksum(), cx::reducer::sum<double>(), done_cb);
    return;
  }
  if (params.lb_period > 0 && iter % params.lb_period == 0) {
    at_sync();  // resume_from_sync() continues the iteration
    return;
  }
  begin_iteration();
}

double CxBlock::block_checksum() const {
  return params.real_kernel ? block.checksum() : 0.0;
}

void CxBlock::resume_from_sync() { begin_iteration(); }

void CxBlock::pup(pup::Er& p) {
  p | params;
  block.pup(p);
  p | iter;
  p | got;
  p | expected;
  p | phase_end;
  done_cb.pup(p);
}

Result run_cx(const Params& p, const cxm::MachineConfig& machine,
              const std::string& lb_strategy) {
  cx::RuntimeConfig cfg;
  cfg.machine = machine;
  cfg.lb_strategy = lb_strategy;
  cx::Runtime rt(cfg);
  Result result;
  double wall0 = 0.0, wall1 = 0.0;
  rt.run([&] {
    auto arr = cx::create_array<CxBlock>(
        {p.geo.bx, p.geo.by, p.geo.bz}, p);
    wall0 = cxu::wall_time();
    if (p.ckpt_every > 0) {
      // Phased run with cx::ft checkpointing: a barrier makes sure every
      // element exists, then each phase of ckpt_every iterations ends in
      // a collective checkpoint. A PE death mid-phase (scripted crash or
      // retransmit give-up) is detected by the phase future timing out;
      // the driver rolls everyone back and re-runs the phase.
      {
        auto barrier = cx::make_future<double>();
        arr.broadcast<&CxBlock::start_until>(cx::cb(barrier), 0);
        (void)barrier.get();
      }
      // Phase driver, retried under the unified RetryPolicy. Every
      // checkpoint epoch is tagged with the phase boundary it snapshots
      // so a rollback — even one that discarded a partial epoch and
      // landed further back than the phase in flight — re-aligns
      // done_iters to the restored state and replays the exact same
      // phase/checkpoint structure as a fault-free run (the property the
      // chaos tier's digest-equality assertions pin down).
      const cx::ft::RetryPolicy& pol = cx::ft::retry_policy();
      const bool autorec = machine.faults.auto_recover;
      int done_iters = 0;
      double sum = 0.0;
      std::uint64_t seen = cx::ft::recoveries();
      std::map<std::uint64_t, int> boundary;  // ckpt epoch -> done_iters
      // Re-align after a rollback; done_iters keeps its value when the
      // restored epoch is unknown (it then IS the current boundary: the
      // epoch stored fully but its taker crashed before returning).
      const auto resync = [&] {
        const auto it = boundary.find(cx::ft::last_restored_epoch());
        if (it != boundary.end()) done_iters = it->second;
      };
      boundary[cx::ft::checkpoint()] = 0;
      while (done_iters < p.iterations) {
        int until = std::min(done_iters + p.ckpt_every, p.iterations);
        auto f = cx::make_future<double>();
        arr.broadcast<&CxBlock::start_until>(cx::cb(f), until);
        std::optional<double> phase;
        int attempt = 0;
        while (!(phase = f.get_for(std::max(pol.delay(attempt), 1.0)))) {
          if (autorec) {
            // A wait slice can expire with nothing wrong (slow run —
            // keep waiting, not an attempt) or because the coordinator
            // finished a rollback under us: rebroadcast exactly once
            // per completed round.
            const std::uint64_t rec = cx::ft::recoveries();
            if (rec == seen) continue;
            seen = rec;
          } else {
            if (cx::ft::failed_pes().empty()) continue;  // slow, not dead
            if (cx::ft::restore() != cx::ft::RestoreStatus::Ok) continue;
          }
          if (!pol.allows(++attempt)) {
            throw std::runtime_error(
                "stencil: phase could not complete within the retry "
                "policy's attempt budget");
          }
          resync();
          until = std::min(done_iters + p.ckpt_every, p.iterations);
          f = cx::make_future<double>();
          arr.broadcast<&CxBlock::start_until>(cx::cb(f), until);
        }
        sum = *phase;
        done_iters = until;
        if (done_iters < p.iterations) {
          const std::uint64_t e = cx::ft::checkpoint();
          if (autorec) {
            // A recovery that fired inside checkpoint() retook the
            // epoch at the restored boundary, not at done_iters.
            const std::uint64_t rec = cx::ft::recoveries();
            if (rec != seen) {
              seen = rec;
              resync();
            }
          }
          boundary[e] = done_iters;
        }
      }
      result.checksum = sum;
    } else {
      auto f = cx::make_future<double>();
      arr.broadcast<&CxBlock::start>(cx::cb(f));
      result.checksum = f.get();
    }
    wall1 = cxu::wall_time();
    cx::exit();
  });
  result.elapsed =
      rt.is_simulated() ? rt.sim_makespan() : (wall1 - wall0);
  result.time_per_iter = result.elapsed / p.iterations;
  const auto lb = rt.lb_stats();
  result.lb_migrations = lb.migrations;
  result.imbalance_before = lb.last_imbalance_before;
  result.imbalance_after = lb.last_imbalance_after;
  return result;
}

}  // namespace stencil
