#pragma once
// stencil3d on the typed core runtime — the "Charm++" series of the
// paper's Figs. 1-3. Blocks are chares in a 3D array; ghost exchange is
// event-driven with a `when` predicate matching the iteration number, so
// no explicit synchronization is needed (paper §II-E).

#include <string>

#include "apps/stencil/stencil_common.hpp"
#include "core/charm.hpp"

namespace stencil {

class CxBlock : public cx::Chare {
 public:
  CxBlock() = default;
  explicit CxBlock(Params p);

  /// Broadcast entry: begin iterating; contribute the final checksum sum
  /// to `done` after the last iteration.
  void start(cx::Callback done);

  /// Phased variant (cx::ft checkpointing): iterate until `iter` reaches
  /// `until`, then contribute the checksum to `done`. Broadcasting with
  /// until == iter acts as a pure barrier/reduction.
  void start_until(cx::Callback done, int until);

  /// Ghost-face delivery, guarded by when(iter == this->iter).
  void recv_ghost(int iter, int face, std::vector<double> data);

  void pup(pup::Er& p) override;
  void resume_from_sync() override;

  // State is public so the when-predicate (a free lambda) can read it.
  Params params;
  Block block;       // unused when params.real_kernel is false
  int iter = 0;
  int got = 0;
  int expected = 0;
  int phase_end = 0;  ///< iteration this phase stops at (see start_until)
  cx::Callback done_cb;

 private:
  void begin_iteration();
  void advance();
  [[nodiscard]] double block_checksum() const;
};

/// Run one configuration; creates (and tears down) its own runtime.
Result run_cx(const Params& p, const cxm::MachineConfig& machine,
              const std::string& lb_strategy = "greedy");

}  // namespace stencil
