#pragma once
// stencil3d on the dynamic model layer — the "CharmPy" series of the
// paper's Figs. 1-3. Same algorithm as the typed variant, but written
// the way the paper writes it: a dynamic class, state in attributes,
// fields as array attributes (the NumPy analogue), ghost delivery
// guarded by the condition string "self.iter == iter", and the kernel a
// plain ("numba-compiled") function applied to the attribute buffers.
//
// The extra per-message cost of this layer (method-name dispatch, value
// boxing, generic serialization) is what reproduces the CharmPy-vs-
// Charm++ gap of the paper. On the simulated backend an additional
// calibrated per-dispatch overhead is charged (see
// DChare::set_sim_dispatch_overhead and bench/micro_dispatch).

#include <string>

#include "apps/stencil/stencil_common.hpp"
#include "machine/machine.hpp"

namespace stencil {

/// Register the dynamic class "stencil.Block" (idempotent).
void register_cpy_classes();

/// Run one configuration on a fresh runtime. `dispatch_overhead` is the
/// per-entry-method cost charged to the simulated clock for the dynamic
/// layer (ignored by the threaded backend; measured, not guessed — see
/// bench/micro_dispatch).
Result run_cpy(const Params& p, const cxm::MachineConfig& machine,
               const std::string& lb_strategy = "greedy",
               double dispatch_overhead = 0.0);

}  // namespace stencil
