#include "apps/stencil/stencil_cpy.hpp"

#include <algorithm>

#include "core/charm.hpp"
#include "model/cpy.hpp"
#include "util/timer.hpp"

namespace stencil {

using cpy::Args;
using cpy::DChare;
using cpy::DClass;
using cpy::Value;

namespace {

int iattr(DChare& self, const char* name) {
  return static_cast<int>(self[name].as_int());
}

std::int64_t block_coord(DChare& self, int d) {
  return self["thisIndex"].item(Value(d)).as_int();
}

Geometry geo_of(DChare& self) {
  Geometry g;
  g.bx = iattr(self, "bx");
  g.by = iattr(self, "by");
  g.bz = iattr(self, "bz");
  g.nx = iattr(self, "nx");
  g.ny = iattr(self, "ny");
  g.nz = iattr(self, "nz");
  return g;
}

double do_kernel(DChare& self) {
  const Geometry g = geo_of(self);
  if (self["real"].truthy()) {
    const double w0 = cxu::wall_time();
    auto& cur = self["cur"].as_f64_array()->data;
    auto& next = self["next"].as_f64_array()->data;
    kern::compute(g.nx, g.ny, g.nz, cur, next);
    cur.swap(next);
    const double tk = cxu::wall_time() - w0;
    cx::charge(tk);
    return tk;
  }
  const double tk = self["cell_cost"].as_real() *
                    static_cast<double>(g.cells_per_block());
  cx::compute(tk);
  return tk;
}

void begin_iteration(DChare& self) {
  const Geometry g = geo_of(self);
  const int x = static_cast<int>(block_coord(self, 0));
  const int y = static_cast<int>(block_coord(self, 1));
  const int z = static_cast<int>(block_coord(self, 2));
  const bool real = self["real"].truthy();
  const std::int64_t it = self["iter"].as_int();
  auto arr = cpy::collection_proxy_of(self);
  const std::uint64_t nominal =
      static_cast<std::uint64_t>(kern::face_cells(g.nx, g.ny, g.nz, 0)) *
      sizeof(double);
  for_each_neighbor(g, x, y, z, [&](int face, int nx, int ny, int nz) {
    auto nb = arr[{nx, ny, nz}];
    if (real) {
      nb.send("recvGhost",
              {Value(it), Value(face ^ 1),
               Value::array(kern::extract_face(
                   g.nx, g.ny, g.nz, self["cur"].as_f64_array()->data,
                   face))});
    } else {
      nb.send_sized("recvGhost",
                    {Value(it), Value(face ^ 1), Value::none()}, nominal);
    }
  });
  if (self["expected"].as_int() == 0) {
    // Single block: no neighbors; advance immediately.
    Args none;
    (void)self.dyn_call("advance", std::move(none));
  }
}

}  // namespace

void register_cpy_classes() {
  static const bool once = [] {
    DClass cls("stencil.Block");

    cls.def("__init__",
            {"bx", "by", "bz", "nx", "ny", "nz", "iterations", "real",
             "cell_cost", "imb", "ngroups", "drift", "lb_period"},
            [](DChare& self, Args& a) {
              const char* names[] = {"bx", "by", "bz", "nx", "ny", "nz",
                                     "iterations", "real", "cell_cost",
                                     "imb", "ngroups", "drift", "lb_period"};
              for (std::size_t i = 0; i < a.size() && i < 13; ++i) {
                self[names[i]] = a[i];
              }
              self["iter"] = Value(0);
              self["got"] = Value(0);
              const Geometry g = geo_of(self);
              const int x = static_cast<int>(block_coord(self, 0));
              const int y = static_cast<int>(block_coord(self, 1));
              const int z = static_cast<int>(block_coord(self, 2));
              self["expected"] = Value(neighbor_count(g, x, y, z));
              if (self["real"].truthy()) {
                std::vector<double> cur;
                kern::init_field(g, x, y, z, cur);
                std::vector<double> next(cur.size(), 0.0);
                self["cur"] = Value::array(std::move(cur));
                self["next"] = Value::array(std::move(next));
              }
              return Value::none();
            });

    cls.def("start", {"done"}, [](DChare& self, Args& a) {
      self["done"] = a[0];
      begin_iteration(self);
      return Value::none();
    });

    cls.def("recvGhost", {"iter", "face", "data"},
            [](DChare& self, Args& a) {
              if (self["real"].truthy()) {
                const Geometry g = geo_of(self);
                kern::inject_face(g.nx, g.ny, g.nz,
                                  self["cur"].as_f64_array()->data,
                                  static_cast<int>(a[1].as_int()),
                                  a[2].as_f64_array()->data);
              }
              self["got"] = Value(self["got"].as_int() + 1);
              if (self["got"].as_int() >= self["expected"].as_int()) {
                Args none;
                (void)self.dyn_call("advance", std::move(none));
              }
              return Value::none();
            });
    // The paper's message-ordering construct, verbatim (§II-E).
    cls.when("recvGhost", "self.iter == iter");

    cls.def("advance", {}, [](DChare& self, Args&) {
      const double tk = do_kernel(self);
      if (self["imb"].truthy()) {
        Params p;  // only the grouping is needed
        p.geo = geo_of(self);
        p.num_load_groups = iattr(self, "ngroups");
        const int drift = std::max(1, iattr(self, "drift"));
        const double alpha = alpha_factor(
            load_group(p, static_cast<int>(block_coord(self, 0)),
                       static_cast<int>(block_coord(self, 1)),
                       static_cast<int>(block_coord(self, 2))),
            p.num_load_groups,
            static_cast<int>(self["iter"].as_int()) / drift);
        cx::compute(tk * alpha);
      }
      self["got"] = Value(0);
      self["iter"] = Value(self["iter"].as_int() + 1);
      if (self["iter"].as_int() >= self["iterations"].as_int()) {
        const Geometry g = geo_of(self);
        const double sum =
            self["real"].truthy()
                ? kern::checksum(g.nx, g.ny, g.nz,
                                 self["cur"].as_f64_array()->data)
                : 0.0;
        self.contribute_value(
            Value(sum), "sum",
            cpy::DTarget::to_future(
                cpy::future_from(self["done"]).slot()));
        return Value::none();
      }
      const std::int64_t period = self["lb_period"].as_int();
      if (period > 0 && self["iter"].as_int() % period == 0) {
        self.sync();
        return Value::none();
      }
      begin_iteration(self);
      return Value::none();
    });

    cls.def("resumeFromSync", {}, [](DChare& self, Args&) {
      begin_iteration(self);
      return Value::none();
    });
    return true;
  }();
  (void)once;
}

Result run_cpy(const Params& p, const cxm::MachineConfig& machine,
               const std::string& lb_strategy, double dispatch_overhead) {
  register_cpy_classes();
  cx::RuntimeConfig cfg;
  cfg.machine = machine;
  cfg.lb_strategy = lb_strategy;
  cx::Runtime rt(cfg);
  DChare::set_sim_dispatch_overhead(dispatch_overhead);
  Result result;
  double wall0 = 0.0, wall1 = 0.0;
  rt.run([&] {
    Args ctor = {Value(p.geo.bx),     Value(p.geo.by),
                 Value(p.geo.bz),     Value(p.geo.nx),
                 Value(p.geo.ny),     Value(p.geo.nz),
                 Value(p.iterations), Value(p.real_kernel),
                 Value(p.cell_cost),  Value(p.imbalance),
                 Value(p.num_load_groups), Value(p.imb_drift),
                 Value(p.lb_period)};
    auto arr = cpy::create_array("stencil.Block",
                                 {p.geo.bx, p.geo.by, p.geo.bz}, ctor);
    auto f = cx::make_future<Value>();
    wall0 = cxu::wall_time();
    arr.broadcast("start", {cpy::to_value(f)});
    result.checksum = f.get().as_real();
    wall1 = cxu::wall_time();
    cx::exit();
  });
  DChare::set_sim_dispatch_overhead(0.0);
  result.elapsed =
      rt.is_simulated() ? rt.sim_makespan() : (wall1 - wall0);
  result.time_per_iter = result.elapsed / p.iterations;
  const auto lb = rt.lb_stats();
  result.lb_migrations = lb.migrations;
  result.imbalance_before = lb.last_imbalance_before;
  result.imbalance_after = lb.last_imbalance_after;
  return result;
}

}  // namespace stencil
