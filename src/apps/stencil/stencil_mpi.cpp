#include "apps/stencil/stencil_mpi.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "mpi/mpi.hpp"
#include "util/timer.hpp"

namespace stencil {

namespace {

struct BlockCoord {
  int x, y, z;
};

BlockCoord coord_of(int rank, const Geometry& g) {
  return {rank / (g.by * g.bz), (rank / g.bz) % g.by, rank % g.bz};
}

int rank_of(int x, int y, int z, const Geometry& g) {
  return (x * g.by + y) * g.bz + z;
}

}  // namespace

Result run_mpi(const Params& p, const cxm::MachineConfig& machine) {
  const Geometry& g = p.geo;
  if (g.num_blocks() != machine.num_pes) {
    throw std::invalid_argument(
        "stencil_mpi: block grid must equal the number of ranks");
  }
  Result result;
  std::mutex result_mutex;
  double makespan = 0.0;
  double wall0 = cxu::wall_time();

  cxmpi::run(
      machine,
      [&](cxmpi::Comm& comm) {
        const BlockCoord me = coord_of(comm.rank(), g);
        Block block;
        if (p.real_kernel) block = Block(g, me.x, me.y, me.z);
        const std::uint64_t nominal =
            static_cast<std::uint64_t>(
                kern::face_cells(g.nx, g.ny, g.nz, 0)) *
            sizeof(double);
        const std::int64_t ngroups = p.num_load_groups;
        const std::int64_t my_group = load_group(p, me.x, me.y, me.z);

        for (int it = 0; it < p.iterations; ++it) {
          // Post receives for every neighbor face, then send ours.
          std::vector<cxmpi::Request> reqs;
          std::vector<std::pair<int, std::vector<std::byte>>> incoming;
          incoming.reserve(6);
          // The ghost from the neighbor behind our face f lands in our
          // own f-side ghost layer; the sender tagged it with *its*
          // face toward us, which is f ^ 1.
          for_each_neighbor(g, me.x, me.y, me.z,
                            [&](int face, int, int, int) {
                              incoming.emplace_back(face,
                                                    std::vector<std::byte>());
                            });
          std::size_t slot = 0;
          for_each_neighbor(
              g, me.x, me.y, me.z, [&](int face, int nx, int ny, int nz) {
                const int nbr = rank_of(nx, ny, nz, g);
                // Tag = the face on which the *receiver* stores it.
                reqs.push_back(comm.irecv_bytes(&incoming[slot++].second,
                                                nbr, face ^ 1));
                std::vector<std::byte> payload;
                if (p.real_kernel) {
                  const auto face_data = block.extract_face(face);
                  payload.resize(face_data.size() * sizeof(double));
                  std::memcpy(payload.data(), face_data.data(),
                              payload.size());
                }
                comm.send_bytes_sized(nbr, face, std::move(payload),
                                      p.real_kernel ? 0 : nominal);
              });
          comm.waitall(reqs);
          if (p.real_kernel) {
            for (auto& [face, bytes] : incoming) {
              std::vector<double> data(bytes.size() / sizeof(double));
              if (!data.empty()) {
                std::memcpy(data.data(), bytes.data(), bytes.size());
              }
              block.inject_face(face, data);
            }
          }
          // Compute (+ synthetic imbalance wait, paper §V-B).
          double tk;
          if (p.real_kernel) {
            const double w0 = cxu::wall_time();
            block.compute();
            tk = cxu::wall_time() - w0;
            comm.charge(tk);
          } else {
            tk = modeled_block_cost(p);
            comm.compute(tk);
          }
          if (p.imbalance) {
            comm.compute(tk * alpha_factor(my_group, ngroups,
                                           it / std::max(1, p.imb_drift)));
          }
        }
        const double sum =
            comm.allreduce(p.real_kernel ? block.checksum() : 0.0,
                           cxmpi::Op::Sum);
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(result_mutex);
          result.checksum = sum;
        }
      },
      &makespan);

  result.elapsed = machine.backend == cxm::Backend::Sim
                       ? makespan
                       : (cxu::wall_time() - wall0);
  result.time_per_iter = result.elapsed / p.iterations;
  return result;
}

}  // namespace stencil
