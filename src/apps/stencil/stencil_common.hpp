#pragma once
// Shared pieces of the stencil3d mini-app (paper §V-A/B): block geometry,
// the 7-point Jacobi kernel, ghost-face extraction/injection, the
// synthetic imbalance model, and a serial reference for correctness
// tests.
//
// The global grid is decomposed into bx*by*bz equal blocks of
// nx*ny*nz interior cells each. Faces are numbered 0:-x 1:+x 2:-y 3:+y
// 4:-z 5:+z; the opposite face of f is f^1.

#include <cstdint>
#include <vector>

#include "core/index.hpp"
#include "pup/pup.hpp"

namespace stencil {

struct Geometry {
  int bx = 2, by = 2, bz = 2;  ///< block grid (in blocks)
  int nx = 8, ny = 8, nz = 8;  ///< interior cells per block

  [[nodiscard]] std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(bx) * by * bz;
  }
  [[nodiscard]] std::int64_t cells_per_block() const {
    return static_cast<std::int64_t>(nx) * ny * nz;
  }
  void pup(pup::Er& p) {
    p | bx;
    p | by;
    p | bz;
    p | nx;
    p | ny;
    p | nz;
  }
};

/// Execution parameters shared by all three variants.
struct Params {
  Geometry geo;
  int iterations = 10;
  bool real_kernel = true;  ///< false: charge modeled cost, skip the math
  double cell_cost = 2.0e-9;  ///< modeled seconds per cell update

  // Synthetic imbalance (paper §V-B). The block grid is partitioned
  // into `num_load_groups` contiguous chunks of the linearized index —
  // exactly the MPI-rank partition of the block map — and all chares in
  // one group ("MPI block") share the group's alpha factor.
  bool imbalance = false;
  int num_load_groups = 1;
  /// Iterations per phase step of the alpha model. The paper's formula
  /// is typographically garbled; with 1 (literal reading) the hot spot
  /// rotates every iteration, with ~lb_period (slow-drift reading) the
  /// load is near-static within an LB window — which reproduces the
  /// paper's 1.9x-2.27x LB gains. See EXPERIMENTS.md.
  int imb_drift = 1;

  int lb_period = 0;  ///< AtSync every N iterations (0 = off)

  /// cx::ft: checkpoint every N iterations (0 = off). The cx variant
  /// then runs in phases of N iterations with a collective checkpoint
  /// between phases, and rolls back to the last checkpoint when a PE
  /// dies mid-phase.
  int ckpt_every = 0;

  void pup(pup::Er& p) {
    p | geo;
    p | iterations;
    p | real_kernel;
    p | cell_cost;
    p | imbalance;
    p | num_load_groups;
    p | imb_drift;
    p | lb_period;
    p | ckpt_every;
  }
};

// Raw kernel functions over ghost-padded fields of shape
// (nx+2)*(ny+2)*(nz+2). These are the "numba-compiled" functions of the
// paper: the dynamic (cpy) variant applies them directly to the buffers
// of its array attributes, the typed variant through the Block wrapper.
namespace kern {

std::size_t field_size(int nx, int ny, int nz);
void init_field(const Geometry& g, int bx_i, int by_i, int bz_i,
                std::vector<double>& cur);
void compute(int nx, int ny, int nz, const std::vector<double>& cur,
             std::vector<double>& next);
std::vector<double> extract_face(int nx, int ny, int nz,
                                 const std::vector<double>& cur, int face);
void inject_face(int nx, int ny, int nz, std::vector<double>& cur, int face,
                 const std::vector<double>& data);
double checksum(int nx, int ny, int nz, const std::vector<double>& cur);
std::int64_t face_cells(int nx, int ny, int nz, int face);

}  // namespace kern

/// Dense block field with one ghost layer; linear index helper.
class Block {
 public:
  Block() = default;
  Block(const Geometry& g, int bx_i, int by_i, int bz_i);

  /// Jacobi 7-point update of the interior from `cur` into `next`,
  /// then swap. Ghost cells must have been injected first.
  void compute();

  [[nodiscard]] std::vector<double> extract_face(int face) const;
  void inject_face(int face, const std::vector<double>& data);
  /// Zero the ghost layer of a physical-boundary face.
  void zero_face(int face);

  [[nodiscard]] double checksum() const;  ///< sum of interior cells
  [[nodiscard]] std::int64_t face_cells(int face) const;

  void pup(pup::Er& p) {
    p | nx_;
    p | ny_;
    p | nz_;
    p | cur_;
    p | next_;
  }

  [[nodiscard]] const std::vector<double>& raw() const { return cur_; }
  [[nodiscard]] std::vector<double>& raw() { return cur_; }

 private:
  [[nodiscard]] std::size_t at(int i, int j, int k) const {
    return (static_cast<std::size_t>(i) * static_cast<std::size_t>(ny_ + 2) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(nz_ + 2) +
           static_cast<std::size_t>(k);
  }

  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> cur_, next_;
};

/// Deterministic initial value of global cell (gi, gj, gk) — used by all
/// variants and the serial reference so checksums agree.
double initial_value(int gi, int gj, int gk);

/// Number of existing neighbors of block (x, y, z) (non-periodic).
int neighbor_count(const Geometry& g, int x, int y, int z);

/// Visit existing neighbors: fn(face, nbr_x, nbr_y, nbr_z).
template <typename Fn>
void for_each_neighbor(const Geometry& g, int x, int y, int z, Fn&& fn) {
  if (x > 0) fn(0, x - 1, y, z);
  if (x < g.bx - 1) fn(1, x + 1, y, z);
  if (y > 0) fn(2, x, y - 1, z);
  if (y < g.by - 1) fn(3, x, y + 1, z);
  if (z > 0) fn(4, x, y, z - 1);
  if (z < g.bz - 1) fn(5, x, y, z + 1);
}

/// The paper's alpha load factor for load group `i` of `n` at iteration
/// `iter`: edge groups (i < 0.2n or i >= 0.8n) have a fixed alpha of 10;
/// middle groups cycle through [100, 600].
double alpha_factor(std::int64_t i, std::int64_t n, int iter);

/// Load group ("MPI block") of block (x, y, z): the contiguous chunk of
/// the linearized block index, matching the block placement map.
std::int64_t load_group(const Params& p, int x, int y, int z);

/// Serial reference: run the full grid for `iterations` steps; returns
/// the final checksum. Used by tests to validate all three variants.
double serial_checksum(const Geometry& g, int iterations);

/// Modeled kernel time of one block update.
inline double modeled_block_cost(const Params& p) {
  return p.cell_cost * static_cast<double>(p.geo.cells_per_block());
}

/// Result of one run (any variant).
struct Result {
  double elapsed = 0.0;        ///< seconds (virtual for Sim backend)
  double time_per_iter = 0.0;  ///< elapsed / iterations
  double checksum = 0.0;
  std::uint64_t lb_migrations = 0;
  double imbalance_before = 0.0;
  double imbalance_after = 0.0;
};

}  // namespace stencil
