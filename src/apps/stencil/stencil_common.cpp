#include "apps/stencil/stencil_common.hpp"

#include <cmath>
#include <stdexcept>

namespace stencil {

namespace kern {

namespace {
inline std::size_t at(int ny, int nz, int i, int j, int k) {
  return (static_cast<std::size_t>(i) * static_cast<std::size_t>(ny + 2) +
          static_cast<std::size_t>(j)) *
             static_cast<std::size_t>(nz + 2) +
         static_cast<std::size_t>(k);
}
}  // namespace

std::size_t field_size(int nx, int ny, int nz) {
  return static_cast<std::size_t>(nx + 2) * static_cast<std::size_t>(ny + 2) *
         static_cast<std::size_t>(nz + 2);
}

void init_field(const Geometry& g, int bx_i, int by_i, int bz_i,
                std::vector<double>& cur) {
  cur.assign(field_size(g.nx, g.ny, g.nz), 0.0);
  for (int i = 1; i <= g.nx; ++i) {
    for (int j = 1; j <= g.ny; ++j) {
      for (int k = 1; k <= g.nz; ++k) {
        cur[at(g.ny, g.nz, i, j, k)] =
            initial_value(bx_i * g.nx + i - 1, by_i * g.ny + j - 1,
                          bz_i * g.nz + k - 1);
      }
    }
  }
}

void compute(int nx, int ny, int nz, const std::vector<double>& cur,
             std::vector<double>& next) {
  for (int i = 1; i <= nx; ++i) {
    for (int j = 1; j <= ny; ++j) {
      for (int k = 1; k <= nz; ++k) {
        next[at(ny, nz, i, j, k)] =
            (cur[at(ny, nz, i, j, k)] + cur[at(ny, nz, i - 1, j, k)] +
             cur[at(ny, nz, i + 1, j, k)] + cur[at(ny, nz, i, j - 1, k)] +
             cur[at(ny, nz, i, j + 1, k)] + cur[at(ny, nz, i, j, k - 1)] +
             cur[at(ny, nz, i, j, k + 1)]) /
            7.0;
      }
    }
  }
}

std::vector<double> extract_face(int nx, int ny, int nz,
                                 const std::vector<double>& cur, int face) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(face_cells(nx, ny, nz, face)));
  switch (face) {
    case 0:
    case 1: {
      const int i = face == 0 ? 1 : nx;
      for (int j = 1; j <= ny; ++j)
        for (int k = 1; k <= nz; ++k) out.push_back(cur[at(ny, nz, i, j, k)]);
      break;
    }
    case 2:
    case 3: {
      const int j = face == 2 ? 1 : ny;
      for (int i = 1; i <= nx; ++i)
        for (int k = 1; k <= nz; ++k) out.push_back(cur[at(ny, nz, i, j, k)]);
      break;
    }
    case 4:
    case 5: {
      const int k = face == 4 ? 1 : nz;
      for (int i = 1; i <= nx; ++i)
        for (int j = 1; j <= ny; ++j) out.push_back(cur[at(ny, nz, i, j, k)]);
      break;
    }
    default: throw std::invalid_argument("bad face");
  }
  return out;
}

void inject_face(int nx, int ny, int nz, std::vector<double>& cur, int face,
                 const std::vector<double>& data) {
  std::size_t n = 0;
  switch (face) {
    case 0:
    case 1: {
      const int i = face == 0 ? 0 : nx + 1;
      for (int j = 1; j <= ny; ++j)
        for (int k = 1; k <= nz; ++k) cur[at(ny, nz, i, j, k)] = data[n++];
      break;
    }
    case 2:
    case 3: {
      const int j = face == 2 ? 0 : ny + 1;
      for (int i = 1; i <= nx; ++i)
        for (int k = 1; k <= nz; ++k) cur[at(ny, nz, i, j, k)] = data[n++];
      break;
    }
    case 4:
    case 5: {
      const int k = face == 4 ? 0 : nz + 1;
      for (int i = 1; i <= nx; ++i)
        for (int j = 1; j <= ny; ++j) cur[at(ny, nz, i, j, k)] = data[n++];
      break;
    }
    default: throw std::invalid_argument("bad face");
  }
}

double checksum(int nx, int ny, int nz, const std::vector<double>& cur) {
  double sum = 0.0;
  for (int i = 1; i <= nx; ++i)
    for (int j = 1; j <= ny; ++j)
      for (int k = 1; k <= nz; ++k) sum += cur[at(ny, nz, i, j, k)];
  return sum;
}

std::int64_t face_cells(int nx, int ny, int nz, int face) {
  switch (face / 2) {
    case 0: return static_cast<std::int64_t>(ny) * nz;
    case 1: return static_cast<std::int64_t>(nx) * nz;
    default: return static_cast<std::int64_t>(nx) * ny;
  }
}

}  // namespace kern

// ---------------------------------------------------------------------------

Block::Block(const Geometry& g, int bx_i, int by_i, int bz_i)
    : nx_(g.nx), ny_(g.ny), nz_(g.nz) {
  kern::init_field(g, bx_i, by_i, bz_i, cur_);
  next_.assign(cur_.size(), 0.0);
}

void Block::compute() {
  kern::compute(nx_, ny_, nz_, cur_, next_);
  cur_.swap(next_);
}

std::vector<double> Block::extract_face(int face) const {
  return kern::extract_face(nx_, ny_, nz_, cur_, face);
}

void Block::inject_face(int face, const std::vector<double>& data) {
  kern::inject_face(nx_, ny_, nz_, cur_, face, data);
}

void Block::zero_face(int face) {
  const std::vector<double> zeros(
      static_cast<std::size_t>(face_cells(face)), 0.0);
  inject_face(face, zeros);
}

double Block::checksum() const {
  return kern::checksum(nx_, ny_, nz_, cur_);
}

std::int64_t Block::face_cells(int face) const {
  return kern::face_cells(nx_, ny_, nz_, face);
}

double initial_value(int gi, int gj, int gk) {
  // Smooth but non-trivial: distinguishable per cell, bounded.
  return std::sin(0.7 * gi) + std::cos(1.3 * gj) + std::sin(2.1 * gk + 0.5);
}

int neighbor_count(const Geometry& g, int x, int y, int z) {
  int n = 0;
  for_each_neighbor(g, x, y, z, [&](int, int, int, int) { ++n; });
  return n;
}

double alpha_factor(std::int64_t i, std::int64_t n, int iter) {
  if (n <= 0) return 0.0;
  const auto lo = static_cast<std::int64_t>(0.2 * static_cast<double>(n));
  const auto hi = static_cast<std::int64_t>(0.8 * static_cast<double>(n));
  if (i < lo || i >= hi) return 10.0;
  const std::int64_t phase = (static_cast<std::int64_t>(iter) + i) % n;
  return 100.0 *
         (1.0 + 5.0 * static_cast<double>(phase) / static_cast<double>(n));
}

std::int64_t load_group(const Params& p, int x, int y, int z) {
  const Geometry& g = p.geo;
  const std::int64_t lin =
      (static_cast<std::int64_t>(x) * g.by + y) * g.bz + z;
  return lin * p.num_load_groups / g.num_blocks();
}

double serial_checksum(const Geometry& g, int iterations) {
  const Geometry whole{1, 1, 1, g.bx * g.nx, g.by * g.ny, g.bz * g.nz};
  std::vector<double> cur;
  kern::init_field(whole, 0, 0, 0, cur);
  std::vector<double> next(cur.size(), 0.0);
  for (int it = 0; it < iterations; ++it) {
    kern::compute(whole.nx, whole.ny, whole.nz, cur, next);
    cur.swap(next);
  }
  return kern::checksum(whole.nx, whole.ny, whole.nz, cur);
}

}  // namespace stencil
