#pragma once
// stencil3d on the mini-MPI baseline — the "mpi4py" series of the
// paper's Figs. 1-3. One block per rank (the paper's MPI decomposition),
// bulk-synchronous: post irecvs, isend faces, waitall, compute. No
// over-decomposition and no migration, so the imbalanced configuration
// cannot be healed — the Fig. 3 contrast.

#include "apps/stencil/stencil_common.hpp"
#include "machine/machine.hpp"

namespace stencil {

/// Run one configuration with one rank per PE. The block grid in
/// `p.geo` must have bx*by*bz == machine.num_pes.
Result run_mpi(const Params& p, const cxm::MachineConfig& machine);

}  // namespace stencil
