// cxrun — launcher for the SocketMachine backend.
//
//   cxrun -np N [-ppn K] [-hosts h0,h1,...] ./program [args...]
//
// Starts N rank processes (fork/exec locally), runs the rendezvous root
// they wire up through, and waits for all of them. Each child gets:
//
//   CXRUN_RANK    its rank (0..N-1)
//   CXRUN_NRANKS  N
//   CXRUN_PPN     worker PEs per rank (default 1)
//   CXRUN_ROOT    host:port of the rendezvous listener
//
// cxm::make_machine sees the environment and joins the socket job, so
// unmodified examples run multi-process. Remote hosts are accepted in
// -hosts only as aliases of localhost for now (ssh launch is future
// work); anything else is rejected up front rather than hanging in
// wireup.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "net/wireup.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: cxrun -np N [-ppn K] [-hosts h0,h1,...] ./program [args...]\n"
      "  -np N      number of rank processes (required)\n"
      "  -ppn K     worker PEs per rank (default 1)\n"
      "  -hosts ... comma-separated host list (localhost only for now)\n");
}

bool is_localhost(const std::string& h) {
  return h == "localhost" || h == "127.0.0.1" || h == "::1";
}

struct Args {
  int np = 0;
  int ppn = 1;
  std::vector<std::string> hosts;
  std::vector<char*> child_argv;  // program + args, from the parent argv
};

bool parse(int argc, char** argv, Args& out) {
  int i = 1;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-np" || a == "--np") {
      if (i + 1 >= argc) return false;
      out.np = std::atoi(argv[++i]);
    } else if (a == "-ppn" || a == "--ppn") {
      if (i + 1 >= argc) return false;
      out.ppn = std::atoi(argv[++i]);
    } else if (a == "-hosts" || a == "--hosts") {
      if (i + 1 >= argc) return false;
      std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size()
                                                           : comma;
        if (end > pos) out.hosts.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (a == "-h" || a == "--help") {
      return false;
    } else {
      break;  // first non-option token is the program
    }
  }
  for (; i < argc; ++i) out.child_argv.push_back(argv[i]);
  out.child_argv.push_back(nullptr);
  return out.np >= 1 && out.ppn >= 1 && out.child_argv.size() > 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    usage();
    return 2;
  }
  for (const std::string& h : args.hosts) {
    if (!is_localhost(h)) {
      std::fprintf(stderr,
                   "cxrun: remote host '%s' is not supported yet — all "
                   "ranks launch on localhost\n",
                   h.c_str());
      return 2;
    }
  }

  // Rendezvous root: an ephemeral listener the ranks check in with.
  cxnet::Fd root;
  std::uint16_t root_port = 0;
  try {
    root = cxnet::tcp_listen(0);
    root_port = cxnet::local_port(root.get());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cxrun: %s\n", e.what());
    return 1;
  }
  const std::string root_addr = "127.0.0.1:" + std::to_string(root_port);

  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(args.np));
  for (int r = 0; r < args.np; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("cxrun: fork");
      for (const pid_t p : pids) ::kill(p, SIGKILL);
      return 1;
    }
    if (pid == 0) {
      ::setenv("CXRUN_RANK", std::to_string(r).c_str(), 1);
      ::setenv("CXRUN_NRANKS", std::to_string(args.np).c_str(), 1);
      ::setenv("CXRUN_PPN", std::to_string(args.ppn).c_str(), 1);
      ::setenv("CXRUN_ROOT", root_addr.c_str(), 1);
      ::execvp(args.child_argv[0], args.child_argv.data());
      std::fprintf(stderr, "cxrun: exec %s: %s\n", args.child_argv[0],
                   std::strerror(errno));
      std::_Exit(127);
    }
    pids.push_back(pid);
  }

  // Run the root exchange; a rank that dies before checking in times the
  // exchange out, which we surface after reaping.
  bool wireup_ok = true;
  try {
    cxnet::run_root_exchange(root.get(),
                             static_cast<std::uint32_t>(args.np),
                             static_cast<std::uint32_t>(args.ppn));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cxrun: wireup failed: %s\n", e.what());
    wireup_ok = false;
    for (const pid_t p : pids) ::kill(p, SIGTERM);
  }

  int exit_code = wireup_ok ? 0 : 1;
  for (int r = 0; r < args.np; ++r) {
    int status = 0;
    if (::waitpid(pids[static_cast<std::size_t>(r)], &status, 0) < 0) {
      std::perror("cxrun: waitpid");
      exit_code = 1;
      continue;
    }
    if (WIFSIGNALED(status)) {
      std::fprintf(stderr, "cxrun: rank %d killed by signal %d (%s)\n", r,
                   WTERMSIG(status), strsignal(WTERMSIG(status)));
      exit_code = 1;
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "cxrun: rank %d exited with status %d\n", r,
                   WEXITSTATUS(status));
      if (exit_code == 0) exit_code = WEXITSTATUS(status);
    }
  }
  return exit_code;
}
